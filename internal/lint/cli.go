package lint

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// Exit codes returned by Main.
const (
	ExitClean    = 0 // no findings (including "no packages matched")
	ExitFindings = 1 // at least one finding
	ExitError    = 2 // usage, load or type-check failure
)

// Main is the sdclint command: it loads the packages matching the argument
// patterns (default "./..." from the current directory), runs every
// analyzer, prints findings to stdout, and returns the process exit code.
// It lives here, rather than in cmd/sdclint, so the full CLI contract —
// including the "no Go packages found" exit-0 path — is testable in-process.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sdclint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	analyzerList := fs.String("analyzers", "", "comma-separated analyzers to run (default: all)")
	list := fs.Bool("list", false, "list available analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array on stdout (sorted, stable)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: sdclint [flags] [packages]\n\n"+
			"sdclint checks the repo's determinism contract (see DESIGN.md).\n"+
			"Suppress a finding with a trailing or preceding comment:\n"+
			"\t//sdclint:ignore <analyzer>[,<analyzer>] <reason>\n\nFlags:\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return ExitError
	}
	if *list {
		for _, a := range All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return ExitClean
	}
	analyzers := All()
	if *analyzerList != "" {
		var err error
		if analyzers, err = ByName(*analyzerList); err != nil {
			fmt.Fprintf(stderr, "sdclint: %v\n", err)
			return ExitError
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := Load(".", patterns...)
	if errors.Is(err, ErrNoPackages) {
		if *jsonOut {
			fmt.Fprintln(stdout, "[]")
		} else {
			fmt.Fprintf(stdout, "sdclint: no Go packages found matching %s\n", strings.Join(patterns, " "))
		}
		return ExitClean
	}
	if err != nil {
		fmt.Fprintf(stderr, "sdclint: %v\n", err)
		return ExitError
	}

	diags := Run(pkgs, analyzers)
	for i := range diags {
		diags[i].Pos.Filename = relativize(diags[i].Pos.Filename)
	}
	if *jsonOut {
		if err := writeJSONDiags(stdout, diags); err != nil {
			fmt.Fprintf(stderr, "sdclint: %v\n", err)
			return ExitError
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "sdclint: %d finding(s)\n", len(diags))
		return ExitFindings
	}
	return ExitClean
}

// jsonDiag is the machine-readable finding schema of -json. The field set
// and ordering are part of the CLI contract: Run returns diagnostics sorted
// by (file, line, col, analyzer), encoding/json emits fields in declaration
// order, and MarshalIndent output carries no map iteration or timestamps —
// so two invocations over the same tree are byte-identical.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// writeJSONDiags emits the diagnostics as a JSON array (never null) with a
// trailing newline.
func writeJSONDiags(w io.Writer, diags []Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	b, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// relativize shortens an absolute diagnostic path to be relative to the
// current directory when the file lies under it.
func relativize(path string) string {
	wd, err := os.Getwd()
	if err != nil {
		return path
	}
	if rel, err := filepath.Rel(wd, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
