package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural layer under the frozenmut, errsink and
// shardkey analyzers: a module-wide call graph with method-set resolution
// for interface calls, and per-function summary facts propagated across
// package boundaries to a fixed point. The per-package syntactic analyzers
// (detrand, maporder, globalmut, srcshare) do not need it.
//
// The analysis is deliberately a linter-grade approximation, not a sound
// points-to analysis: aliases are tracked through simple assignment chains,
// calls through function *values* are not resolved, and unresolved or
// non-module callees are assumed side-effect-free except for a small
// hard-coded table of standard-library mutators (sort, slices, copy,
// simrand.DeriveInto). That keeps the engine stdlib-only and fast while
// still catching the bug classes this repo has actually shipped fixes for.

// Module is the whole-program view of one Run: every function declaration
// across the loaded packages, its resolved call sites, and its summary.
type Module struct {
	Pkgs []*Package

	// Funcs indexes every function and method declared (with a body) in
	// the loaded packages.
	Funcs map[*types.Func]*FuncNode

	// frozen maps a type marked //sdclint:frozen to its construction-set
	// facts (see frozenmut.go for the directive grammar).
	frozen map[*types.TypeName]*frozenType

	// ctors is the union of the construction sets: functions allowed to
	// write frozen state declared in their own package (the constructors by
	// result-type convention, ctors= extras, and their transitive
	// same-package callees). Filled by collectFrozen.
	ctors map[*types.Func]bool

	// implCache memoizes interface-method resolution per interface type.
	implCache map[*types.Interface][]*types.Func

	// namedTypes is every named non-interface type declared in the module,
	// the candidate set for interface method resolution.
	namedTypes []*types.Named
}

// FuncNode is one declared function with its resolved call sites.
type FuncNode struct {
	Fn   *types.Func
	Pkg  *Package
	Decl *ast.FuncDecl

	// Params lists the receiver (if any) followed by the declared
	// parameters, positionally aligned with Summary.Mutates. A slot is nil
	// for unnamed or blank parameters.
	Params []*types.Var

	calls []callsite

	Summary Summary
}

// callsite is one resolved call expression inside a function body
// (function literals are attributed to their enclosing declaration).
type callsite struct {
	call *ast.CallExpr
	// recv is the receiver expression for method-value calls, nil for
	// plain function calls. When non-nil it aligns with Mutates[0] of a
	// target's summary, and call.Args with Mutates[1:].
	recv ast.Expr
	// targets are the possible callees: one for a static call, every
	// module implementation for a call through an interface method.
	targets []*types.Func
}

// Summary carries the per-function facts the analyzers consume. All fields
// are monotone (false -> true only), so fixed-point propagation terminates.
type Summary struct {
	// Mutates[i] reports that the function may write through its i-th
	// parameter (receiver first, if any) into caller-visible state.
	Mutates []bool
	// WriterError reports that the function's error result may carry an
	// error originating from an io write/close/flush path, so discarding
	// it silently truncates output (the errsink contract).
	WriterError bool
	// ReturnsRecvAlias reports that a method may return memory reachable
	// from its receiver (a shared index slice, an internal map, a held
	// pointer), so mutating the result mutates the receiver's state.
	ReturnsRecvAlias bool
}

// BuildModule indexes the packages, resolves every call site and computes
// the summaries. It is called once per Run over the root packages.
func BuildModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:      pkgs,
		Funcs:     make(map[*types.Func]*FuncNode),
		frozen:    make(map[*types.TypeName]*frozenType),
		implCache: make(map[*types.Interface][]*types.Func),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				m.Funcs[fn] = &FuncNode{Fn: fn, Pkg: pkg, Decl: fd, Params: declParams(fd, pkg.Info)}
			}
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); !isIface {
				m.namedTypes = append(m.namedTypes, named)
			}
		}
	}
	for _, node := range m.Funcs {
		m.resolveCalls(node)
	}
	m.collectFrozen()
	m.propagate()
	return m
}

// declParams returns the receiver (if any) followed by the parameters.
func declParams(fd *ast.FuncDecl, info *types.Info) []*types.Var {
	var out []*types.Var
	addList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if len(field.Names) == 0 {
				out = append(out, nil) // unnamed parameter
				continue
			}
			for _, name := range field.Names {
				v, _ := info.Defs[name].(*types.Var)
				out = append(out, v) // nil for _
			}
		}
	}
	addList(fd.Recv)
	addList(fd.Type.Params)
	return out
}

// resolveCalls finds every call expression in the node's body (function
// literals included) and resolves its possible targets.
func (m *Module) resolveCalls(node *FuncNode) {
	info := node.Pkg.Info
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		cs := callsite{call: call}
		switch fun := unparen(call.Fun).(type) {
		case *ast.Ident:
			if fn, ok := info.Uses[fun].(*types.Func); ok {
				cs.targets = []*types.Func{fn}
			}
		case *ast.SelectorExpr:
			if sel := info.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal {
				cs.recv = fun.X
				fn := sel.Obj().(*types.Func)
				if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
					cs.targets = m.implementations(iface, fn)
				} else {
					cs.targets = []*types.Func{fn}
				}
			} else if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
				cs.targets = []*types.Func{fn} // pkg-qualified call
			}
		}
		node.calls = append(node.calls, cs)
		return true
	})
}

// implementations resolves an interface method to every module method that
// can stand behind it: the fn's own declarations on module types whose
// method sets satisfy the interface.
func (m *Module) implementations(iface *types.Interface, fn *types.Func) []*types.Func {
	if impls, ok := m.implCache[iface]; ok {
		return filterByName(impls, fn.Name())
	}
	var impls []*types.Func
	for _, named := range m.namedTypes {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			impls = append(impls, named.Method(i))
		}
	}
	m.implCache[iface] = impls
	return filterByName(impls, fn.Name())
}

func filterByName(fns []*types.Func, name string) []*types.Func {
	var out []*types.Func
	for _, f := range fns {
		if f.Name() == name {
			out = append(out, f)
		}
	}
	return out
}

// sortedFuncs returns every function node ordered by declaration position,
// so analyses that iterate the function index behave identically run to run
// (the index itself is a map).
func (m *Module) sortedFuncs() []*FuncNode {
	var nodes []*FuncNode
	for _, node := range m.Funcs {
		nodes = append(nodes, node)
	}
	sort.Slice(nodes, func(i, j int) bool {
		a := nodes[i].Pkg.Fset.Position(nodes[i].Decl.Pos())
		b := nodes[j].Pkg.Fset.Position(nodes[j].Decl.Pos())
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return nodes
}

// summaryOf returns the summary for fn, or nil for non-module functions.
func (m *Module) summaryOf(fn *types.Func) *Summary {
	if node, ok := m.Funcs[fn]; ok {
		return &node.Summary
	}
	return nil
}

// propagate computes the summaries to a fixed point: intra-procedural facts
// are collected per function, then call edges feed caller facts until no
// summary changes. All facts are monotone, so this terminates.
func (m *Module) propagate() {
	for changed := true; changed; {
		changed = false
		for _, node := range m.Funcs {
			if m.updateSummary(node) {
				changed = true
			}
		}
	}
}

// updateSummary recomputes one function's summary against the current
// state of its callees' summaries; it reports whether anything changed.
func (m *Module) updateSummary(node *FuncNode) bool {
	old := node.Summary
	if node.Summary.Mutates == nil {
		node.Summary.Mutates = make([]bool, len(node.Params))
	}
	paramIndex := make(map[*types.Var]int, len(node.Params))
	for i, p := range node.Params {
		if p != nil {
			paramIndex[p] = i
		}
	}
	info := node.Pkg.Info

	// Direct writes through a parameter.
	forEachWrite(node.Decl.Body, func(lv ast.Expr) {
		root := rootIdent(lv, info)
		if root == nil {
			return
		}
		obj, ok := info.ObjectOf(root).(*types.Var)
		if !ok {
			return
		}
		if i, isParam := paramIndex[obj]; isParam && writeEscapes(lv, info) {
			node.Summary.Mutates[i] = true
		}
	})

	// Writes via callees: an argument aliasing a parameter handed to a
	// callee that mutates that position.
	for _, cs := range node.calls {
		m.forEachMutatedArg(cs, info, func(arg ast.Expr) {
			if v := refRootVar(arg, info); v != nil {
				if i, isParam := paramIndex[v]; isParam {
					node.Summary.Mutates[i] = true
				}
			}
		})
	}

	m.updateWriterError(node, paramIndex)
	m.updateRecvAlias(node)

	if len(old.Mutates) != len(node.Summary.Mutates) {
		return true
	}
	for i := range old.Mutates {
		if old.Mutates[i] != node.Summary.Mutates[i] {
			return true
		}
	}
	return old.WriterError != node.Summary.WriterError ||
		old.ReturnsRecvAlias != node.Summary.ReturnsRecvAlias
}

// forEachMutatedArg invokes fn for every argument (receiver included) of
// the call site that a resolved target may mutate, and applies the
// hard-coded table of standard-library mutators for external callees.
func (m *Module) forEachMutatedArg(cs callsite, info *types.Info, fn func(arg ast.Expr)) {
	// Positional view: receiver (if any) then args.
	argAt := func(i int) ast.Expr {
		if cs.recv != nil {
			if i == 0 {
				return cs.recv
			}
			i--
		}
		if i < len(cs.call.Args) {
			return cs.call.Args[i]
		}
		return nil
	}
	resolvedModuleTarget := false
	for _, target := range cs.targets {
		if sum := m.summaryOf(target); sum != nil {
			resolvedModuleTarget = true
			for i, mut := range sum.Mutates {
				if mut {
					if arg := argAt(i); arg != nil {
						fn(arg)
					}
				}
			}
		}
	}
	if resolvedModuleTarget {
		return
	}
	// External or unresolved callee: the hard-coded mutator table.
	for _, i := range stdlibMutatedArgs(cs, info) {
		if arg := argAt(i); arg != nil {
			fn(arg)
		}
	}
}

// stdlibMutatedArgs returns the positional indexes (receiver-first) of
// arguments mutated by well-known non-module callees.
func stdlibMutatedArgs(cs callsite, info *types.Info) []int {
	call := cs.call
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if b, ok := info.Uses[fun].(*types.Builtin); ok && b.Name() == "copy" {
			return []int{0}
		}
	case *ast.SelectorExpr:
		fn, ok := info.Uses[fun.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return nil
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
			// sort.Slice/Strings/Ints/..., slices.Sort*/Reverse mutate
			// their first argument in place.
			if strings.HasPrefix(fn.Name(), "Sort") || fn.Name() == "Slice" ||
				fn.Name() == "SliceStable" || fn.Name() == "Strings" ||
				fn.Name() == "Ints" || fn.Name() == "Float64s" || fn.Name() == "Reverse" {
				if cs.recv != nil {
					return nil
				}
				return []int{0}
			}
		}
		// simrand.(*Source).DeriveInto overwrites dst wholesale. Matched
		// by name+receiver so it also binds inside single-package golden
		// runs where the simrand bodies are not loaded.
		if cs.recv != nil && fn.Name() == "DeriveInto" {
			if sel := info.Selections[fun]; sel != nil && isSimrandSource(sel.Recv()) {
				return []int{1} // position 0 is the receiver
			}
		}
	}
	return nil
}

// updateWriterError marks the node when an error result can carry a failed
// write/close/flush, directly or through a callee.
func (m *Module) updateWriterError(node *FuncNode, paramIndex map[*types.Var]int) {
	if node.Summary.WriterError {
		return
	}
	if node.Decl.Type.Results == nil {
		return
	}
	returnsError := false
	for _, f := range node.Decl.Type.Results.List {
		if t := node.Pkg.Info.TypeOf(f.Type); t != nil && isErrorType(t) {
			returnsError = true
		}
	}
	if !returnsError {
		return
	}
	info := node.Pkg.Info

	// tainted is the set of local error variables holding a write-path
	// error. Two passes are enough for the assignment chains in practice
	// (err := write(); ...; return fmt.Errorf("...: %w", err)).
	tainted := make(map[types.Object]bool)
	taintedExpr := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && tainted[info.ObjectOf(id)] {
				found = true
			}
			return !found
		})
		return found
	}
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				writePath := false
				for _, rhs := range st.Rhs {
					if call, ok := unparen(rhs).(*ast.CallExpr); ok && m.isWritePathCall(call, info) {
						writePath = true
					}
					if taintedExpr(rhs) {
						writePath = true
					}
				}
				if !writePath {
					return true
				}
				for _, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := info.ObjectOf(id); obj != nil && isErrorType(obj.Type()) {
							tainted[obj] = true
						}
					}
				}
			case *ast.ReturnStmt:
				for _, res := range st.Results {
					if !isErrorType(info.TypeOf(res)) {
						continue
					}
					if call, ok := unparen(res).(*ast.CallExpr); ok && m.isWritePathCall(call, info) {
						node.Summary.WriterError = true
					}
					if taintedExpr(res) {
						node.Summary.WriterError = true
					}
				}
			}
			return true
		})
	}
}

// updateRecvAlias marks methods that may return receiver-reachable memory.
func (m *Module) updateRecvAlias(node *FuncNode) {
	if node.Summary.ReturnsRecvAlias || node.Decl.Recv == nil {
		return
	}
	if len(node.Params) == 0 || node.Params[0] == nil {
		return
	}
	recv := node.Params[0]
	info := node.Pkg.Info
	aliases := map[types.Object]bool{recv: true}
	aliasExpr := func(e ast.Expr) bool {
		if !isRefType(info.TypeOf(e)) {
			return false
		}
		root := rootIdent(e, info)
		if root == nil {
			return false
		}
		if aliases[info.ObjectOf(root)] {
			return true
		}
		// A chained accessor: recv.Accessor() where Accessor itself
		// returns receiver-reachable memory.
		if call, ok := unparen(e).(*ast.CallExpr); ok {
			if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok {
				if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
					if root := rootIdent(sel.X, info); root != nil && aliases[info.ObjectOf(root)] {
						if sum := m.summaryOf(s.Obj().(*types.Func)); sum != nil && sum.ReturnsRecvAlias {
							return true
						}
					}
				}
			}
		}
		return false
	}
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				fromAlias := false
				for _, rhs := range st.Rhs {
					if aliasExpr(rhs) {
						fromAlias = true
					}
				}
				if !fromAlias {
					return true
				}
				for _, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && isRefType(info.TypeOf(id)) {
						if obj := info.ObjectOf(id); obj != nil {
							aliases[obj] = true
						}
					}
				}
			case *ast.ReturnStmt:
				for _, res := range st.Results {
					if aliasExpr(res) {
						node.Summary.ReturnsRecvAlias = true
					}
				}
			}
			return true
		})
	}
}

// --- shared AST/type helpers -------------------------------------------

// forEachWrite invokes fn for every lvalue written in body: assignments,
// ++/--, and range statements assigning existing variables.
func forEachWrite(body ast.Node, fn func(lv ast.Expr)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				fn(lhs)
			}
		case *ast.IncDecStmt:
			fn(st.X)
		case *ast.RangeStmt:
			if st.Tok.String() == "=" {
				for _, e := range []ast.Expr{st.Key, st.Value} {
					if e != nil {
						fn(e)
					}
				}
			}
		}
		return true
	})
}

// writeEscapes reports whether writing to lv stores through at least one
// level of indirection (pointer deref, slice element, map element), i.e.
// whether the write lands in memory shared beyond the root variable's own
// storage. Rebinding a local ("c = other") or writing a field of a local
// struct value never escapes.
func writeEscapes(lv ast.Expr, info *types.Info) bool {
	for {
		switch x := lv.(type) {
		case *ast.ParenExpr:
			lv = x.X
		case *ast.StarExpr:
			return true
		case *ast.IndexExpr:
			switch info.TypeOf(x.X).Underlying().(type) {
			case *types.Slice, *types.Map, *types.Pointer:
				return true
			}
			lv = x.X // array element: still the root's own storage
		case *ast.SelectorExpr:
			if t := info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Pointer); ok {
					return true // implicit deref
				}
			}
			lv = x.X
		default:
			return false
		}
	}
}

// refRootVar returns the variable whose referenced state an expression's
// value aliases, or nil when the value is an independent copy: a pointer,
// slice, map or channel expression aliases its root variable's state, and
// &expr aliases expr's root.
func refRootVar(e ast.Expr, info *types.Info) *types.Var {
	e = unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op.String() == "&" {
		if root := rootIdent(u.X, info); root != nil {
			v, _ := info.ObjectOf(root).(*types.Var)
			return v
		}
		return nil
	}
	if !isRefType(info.TypeOf(e)) {
		return nil
	}
	root := rootIdent(e, info)
	if root == nil {
		return nil
	}
	v, _ := info.ObjectOf(root).(*types.Var)
	return v
}

// isRefType reports whether values of t share referenced state when
// copied: pointers, slices, maps and channels.
func isRefType(t types.Type) bool {
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan:
		return true
	}
	return false
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// unparen strips any number of parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// enclosingFuncDecl returns the *types.Func of the innermost function
// DECLARATION in the stack — function literals are attributed to their
// enclosing declaration, matching how call sites and summaries are built.
func enclosingFuncDecl(stack []ast.Node, info *types.Info) *types.Func {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			fn, _ := info.Defs[fd.Name].(*types.Func)
			return fn
		}
	}
	return nil
}
