// Package frozenmut is analyzer test data: post-construction writes into
// state frozen by an //sdclint:frozen directive.
package frozenmut

import "sort"

// Box is the frozen test state: construction is the only mutating phase.
//
//sdclint:frozen
type Box struct {
	Vals  []int
	ByKey map[string]int
	n     int
}

// NewBox builds a Box; its writes — and those of everything it calls in
// this package — are the construction phase, exempt by definition.
func NewBox(vals []int) *Box {
	b := &Box{Vals: vals, ByKey: map[string]int{}}
	b.index()
	return b
}

// index is reachable from the constructor, so its writes are exempt too.
func (b *Box) index() {
	for i, v := range b.Vals {
		b.ByKey[key(i)] = v
	}
	b.n = len(b.Vals)
}

func key(i int) string { return string(rune('a' + i)) }

// Shared returns the shared values slice — do not mutate.
func (b *Box) Shared() []int { return b.Vals }

// Sorted returns a fresh sorted copy, safe to mutate.
func (b *Box) Sorted() []int {
	out := make([]int, len(b.Vals))
	copy(out, b.Vals)
	sort.Ints(out)
	return out
}

// DirectWrite mutates a frozen field after construction.
func DirectWrite(b *Box) {
	b.n = 7
}

// ElemWrite writes an element of the frozen slice.
func ElemWrite(b *Box) {
	b.Vals[0] = 1
}

// MapWrite writes into the frozen map.
func MapWrite(b *Box) {
	b.ByKey["x"] = 1
}

// AliasWrite mutates through a local alias of the shared slice.
func AliasWrite(b *Box) {
	vals := b.Vals
	vals[0] = 2
}

// AccessorAliasWrite mutates memory handed out by an alias-returning
// accessor.
func AccessorAliasWrite(b *Box) {
	s := b.Shared()
	s[0] = 3
}

// CalleeMutation hands the frozen slice to an in-place sorter.
func CalleeMutation(b *Box) {
	sort.Ints(b.Vals)
}

func scrub(xs []int) {
	for i := range xs {
		xs[i] = 0
	}
}

// HelperMutation passes frozen state to a module function whose summary
// says it writes its parameter.
func HelperMutation(b *Box) {
	scrub(b.Vals)
}

// SortedCopy mutates a fresh copy — clean.
func SortedCopy(b *Box) []int {
	out := b.Sorted()
	sort.Ints(out)
	return out
}

// LocalValue writes a field of a local struct copy — never escapes.
func LocalValue(b *Box) int {
	local := *b
	local.n = 1
	return local.n
}

type scratch struct{ vals []int }

// NonFrozen mutates ordinary state — clean.
func NonFrozen(s *scratch) {
	s.vals = append(s.vals, 1)
	s.vals[0] = 2
}

// Suppressed documents an intentional exception.
func Suppressed(b *Box) {
	//sdclint:ignore frozenmut test fixture: intentional suppressed write
	b.n = 9
}
