// Package serve is the network quarantine: the screening service's status
// API is the module's one transport edge, so net/http is permitted here.
package serve

import "net/http"

// Handler serves a status snapshot.
func Handler() http.Handler { return http.NewServeMux() }
