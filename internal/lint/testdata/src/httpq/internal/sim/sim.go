// Package sim is simulation code: importing net/http from here is
// forbidden, even without opening a socket.
package sim

import "net/http"

// Fetch would make a simulation result depend on the network.
func Fetch(url string) (*http.Response, error) { return http.Get(url) }
