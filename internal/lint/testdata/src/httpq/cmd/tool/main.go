// Command tool sits in the cmd layer — which may read the wall clock, but
// may NOT import net/http: like os/exec, the network quarantine is
// stricter than the wallclock one. cmd/sdcserve delegates its listener to
// internal/serve.
package main

import "net/http"

func main() {
	_ = http.ListenAndServe(":0", nil)
}
