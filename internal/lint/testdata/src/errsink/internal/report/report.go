// Package report is analyzer test data: discarded errors on io write paths
// inside the errsink scope.
package report

import (
	"bytes"
	"fmt"
	"os"
	"strings"

	"farron/internal/lint/testdata/src/errsink/internal/engine/wio"
)

// WriteBad discards write-path errors in every shape the analyzer flags.
func WriteBad(f *os.File, data []byte) {
	f.Write(data)
	_ = f.Sync()
	n, _ := f.Write(data)
	_ = n
	fmt.Fprintf(f, "x")
	wio.WriteAll(f, data)
	f.Close()
}

// WriteGood handles every error and uses the sanctioned idioms.
func WriteGood(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close() // backstop for the early-error paths; success path checks
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := wio.WriteAll(f, data); err != nil {
		return err
	}
	return f.Close()
}

// InMemory writes to infallible sinks and the process streams — clean.
func InMemory(data []byte) string {
	var b bytes.Buffer
	b.Write(data)
	var sb strings.Builder
	sb.WriteString("x")
	fmt.Fprintf(os.Stderr, "progress\n")
	return sb.String()
}

// Suppressed documents an intentional discard.
func Suppressed(f *os.File) {
	//sdclint:ignore errsink test fixture: intentional discard
	f.Close()
}
