// Package wio is analyzer test data: a helper whose error result carries a
// failed write (the WriterError summary), so discarding it at a call site
// in another package is a finding.
package wio

import "io"

// WriteAll writes data and returns the write error.
func WriteAll(w io.Writer, data []byte) error {
	_, err := w.Write(data)
	return err
}
