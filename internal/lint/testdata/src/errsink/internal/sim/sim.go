// Package sim is analyzer test data: the same discards outside the errsink
// scope (not cmd, internal/report or internal/engine) — no findings, the
// policy is layer-scoped.
package sim

import "os"

// Spill discards write-path errors; out of scope, errsink stays silent.
func Spill(f *os.File, data []byte) {
	f.Write(data)
	f.Close()
}
