// Command tool sits in the cmd layer — which may NOT import raw net: like
// os/exec and net/http, the socket quarantine is stricter than the
// wallclock one. Commands delegate dialing to internal/engine/cluster and
// listening to internal/serve.
package main

import "net"

func main() {
	ln, _ := net.Listen("tcp", ":0")
	_ = ln
}
