// Package cluster is the TCP shard-transport quarantine: the cluster
// coordinator dials worker daemons and the daemon binds its listener, so
// raw net is permitted here.
package cluster

import "net"

// Dial opens a worker-daemon connection.
func Dial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
