// Package sim is simulation code: importing raw net from here is
// forbidden, even without opening a socket — a simulation result must
// never depend on the network.
package sim

import "net"

// Resolve would make a simulation result depend on the resolver.
func Resolve(host string) ([]net.IP, error) { return net.LookupIP(host) }
