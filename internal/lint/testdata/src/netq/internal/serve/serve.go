// Package serve is the status API's transport edge: its listener binds
// ephemeral ports via net.Listen, so raw net is permitted here too.
package serve

import "net"

// Listen binds the status API's address.
func Listen(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }
