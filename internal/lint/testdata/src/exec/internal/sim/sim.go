// Package sim is simulation code: importing os/exec from here is
// forbidden, even without spawning anything.
package sim

import "os/exec"

// Which would make a simulation result depend on the host environment.
func Which(tool string) (string, error) { return exec.LookPath(tool) }
