// Package fanout is the subprocess quarantine: re-exec'ing the current
// binary to distribute shards is its whole job, so os/exec is permitted.
package fanout

import "os/exec"

// Spawn launches one worker subprocess.
func Spawn(path string) error { return exec.Command(path, "-fanout-worker").Start() }
