// Command tool sits in the cmd layer — which may read the wall clock, but
// may NOT spawn subprocesses: the os/exec quarantine is stricter than the
// wallclock one, fan-out alone shells out.
package main

import "os/exec"

func main() {
	_ = exec.Command("true").Run()
}
