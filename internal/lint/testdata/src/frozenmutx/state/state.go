// Package state is analyzer test data: a frozen type whose construction
// lives here while mutation attempts come from a sibling package, so the
// finding requires cross-package summary propagation.
package state

// Table is frozen after New returns.
//
//sdclint:frozen
type Table struct {
	Rows []string
	byID map[string]int
}

// New builds a Table; construction-phase writes are exempt.
func New(rows []string) *Table {
	t := &Table{Rows: rows, byID: map[string]int{}}
	for i, r := range rows {
		t.byID[r] = i
	}
	return t
}

// All returns the shared row slice — do not mutate.
func (t *Table) All() []string { return t.Rows }

// Copy returns a fresh copy, safe to mutate.
func (t *Table) Copy() []string {
	out := make([]string, len(t.Rows))
	copy(out, t.Rows)
	return out
}
