// Package user is analyzer test data: cross-package mutation of the frozen
// state.Table.
package user

import (
	"sort"

	"farron/internal/lint/testdata/src/frozenmutx/state"
)

// Mutate writes the frozen table from another package.
func Mutate(t *state.Table) {
	t.Rows[0] = "x"
}

// SortShared sorts the accessor's shared slice in place: All returns
// receiver-reachable memory (a summary fact computed in package state).
func SortShared(t *state.Table) {
	sort.Strings(t.All())
}

// SortCopy sorts a fresh copy — clean, because Copy's summary says its
// result does not alias the receiver.
func SortCopy(t *state.Table) []string {
	out := t.Copy()
	sort.Strings(out)
	return out
}
