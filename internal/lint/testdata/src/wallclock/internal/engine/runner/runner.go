// Package runner sits in the engine layer, which may measure how long a
// run takes on the wall clock.
package runner

import "farron/internal/lint/testdata/src/wallclock/internal/engine/wallclock"

// Time measures fn's real elapsed time.
func Time(fn func()) float64 {
	s := wallclock.Start()
	fn()
	return s.Seconds()
}
