// Package wallclock mirrors the real quarantine package: the one place
// where detrand waives the wall-clock rules.
package wallclock

import "time"

// Stamp is an opaque wall-clock reading.
type Stamp struct{ t time.Time }

// Start reads the real clock — sanctioned here, and only here.
func Start() Stamp { return Stamp{t: time.Now()} }

// Seconds returns the real time elapsed since s.
func (s Stamp) Seconds() float64 { return time.Since(s.t).Seconds() }
