// Package sim is simulation code: importing the wall-clock quarantine
// from here is forbidden, even without calling a clock function.
package sim

import "farron/internal/lint/testdata/src/wallclock/internal/engine/wallclock"

// Elapsed would leak real elapsed time into a simulation result.
func Elapsed(s wallclock.Stamp) float64 { return s.Seconds() }
