// Command tool is in the cmd layer, which may report real run time.
package main

import "farron/internal/lint/testdata/src/wallclock/internal/engine/wallclock"

func main() {
	_ = wallclock.Start()
}
