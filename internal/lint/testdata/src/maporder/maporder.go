// Package maporder is analyzer test data: order-dependent effects inside
// range-over-map loops versus the sorted-keys idiom.
package maporder

import (
	"fmt"
	"sort"

	"farron/internal/simrand"
)

// BadCollect gathers map values into a slice that is never sorted.
func BadCollect(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// BadPrint writes output in map iteration order.
func BadPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// BadRand drains a simrand stream in map iteration order.
func BadRand(m map[string]int, src *simrand.Source) int {
	total := 0
	for range m {
		total += src.Intn(10)
	}
	return total
}

// CleanSortedKeys is the sanctioned idiom: collect keys, sort, iterate.
func CleanSortedKeys(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// CleanAggregate accumulates an order-independent integer reduction.
func CleanAggregate(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Suppressed demonstrates the escape hatch on a deliberate violation.
func Suppressed(m map[string]bool) []string {
	var out []string
	//sdclint:ignore maporder demonstrating the escape hatch
	for k := range m {
		out = append(out, k)
	}
	return out
}
