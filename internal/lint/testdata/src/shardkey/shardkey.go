// Package shardkey is analyzer test data: simrand derivation inside loops
// with loop-invariant keys.
package shardkey

import "farron/internal/simrand"

// Repeat derives with constant keys inside a per-entity loop: every
// iteration replays the identical substream.
func Repeat(rng *simrand.Source, ids []string) []uint64 {
	var out []uint64
	for range ids {
		r := rng.Derive("entity")
		out = append(out, r.Uint64())
	}
	return out
}

// RepeatInto is the scratch-reuse variant of the same bug.
func RepeatInto(rng *simrand.Source, ids []string) []uint64 {
	var scratch simrand.Source
	var out []uint64
	for i := 0; i < len(ids); i++ {
		rng.DeriveInto(&scratch, "entity")
		out = append(out, scratch.Uint64())
	}
	return out
}

// Keyed includes the loop entity in the keys — the sanctioned pattern.
func Keyed(rng *simrand.Source, ids []string) []uint64 {
	var out []uint64
	for _, id := range ids {
		r := rng.Derive("entity", id)
		out = append(out, r.Uint64())
	}
	return out
}

// KeyedIndirect keys through a per-iteration local whose value flows from
// the loop index.
func KeyedIndirect(rng *simrand.Source, ids []string) []uint64 {
	var out []uint64
	for i := range ids {
		key := ids[i]
		r := rng.Derive("entity", key)
		out = append(out, r.Uint64())
	}
	return out
}

// Hoisted derives once outside the loop — clean.
func Hoisted(rng *simrand.Source, ids []string) uint64 {
	r := rng.Derive("setup")
	var sum uint64
	for range ids {
		sum += r.Uint64()
	}
	return sum
}

// PerEntityReceiver derives from a receiver that varies per iteration, so
// constant keys are fine.
func PerEntityReceiver(srcs []*simrand.Source) []uint64 {
	var out []uint64
	for _, s := range srcs {
		out = append(out, s.Derive("x").Uint64())
	}
	return out
}

// Suppressed documents an intentional invariant derivation.
func Suppressed(rng *simrand.Source, ids []string) uint64 {
	var sum uint64
	for range ids {
		//sdclint:ignore shardkey test fixture: intentional repeat
		sum += rng.Derive("entity").Uint64()
	}
	return sum
}
