// Package srcshare is analyzer test data: simrand.Source ownership across
// goroutine boundaries.
package srcshare

import "farron/internal/simrand"

// Shared leaks the parent's Source into a goroutine: a data race, and a
// nondeterministic draw order even when externally synchronized.
func Shared(seed uint64) {
	src := simrand.New(seed)
	done := make(chan struct{})
	go func() {
		_ = src.Uint64()
		close(done)
	}()
	_ = src.Uint64()
	<-done
}

type worker struct {
	src *simrand.Source
}

// SharedField reaches a Source through a captured struct.
func SharedField(w *worker) {
	done := make(chan struct{})
	go func() {
		_ = w.src.Uint64()
		close(done)
	}()
	_ = w.src.Uint64()
	<-done
}

// Derived hands each goroutine its own substream — the sanctioned pattern.
func Derived(seed uint64) {
	parent := simrand.New(seed)
	done := make(chan struct{}, 2)
	for _, key := range []string{"a", "b"} {
		sub := parent.Derive("worker", key)
		go func(s *simrand.Source) {
			_ = s.Uint64()
			done <- struct{}{}
		}(sub)
	}
	<-done
	<-done
}

// OwnSource creates the Source inside the goroutine — no sharing.
func OwnSource(seed uint64) {
	done := make(chan struct{})
	go func() {
		local := simrand.New(seed)
		_ = local.Uint64()
		close(done)
	}()
	<-done
}

// Suppressed demonstrates the escape hatch: the caller guarantees the
// parent never draws again.
func Suppressed(seed uint64) {
	src := simrand.New(seed)
	done := make(chan struct{})
	go func() {
		_ = src.Uint64() //sdclint:ignore srcshare demonstrating the escape hatch
		close(done)
	}()
	<-done
}
