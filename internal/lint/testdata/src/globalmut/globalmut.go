// Package globalmut is analyzer test data: mutable package state versus
// init-built tables, sentinel errors and justified globals.
package globalmut

import "errors"

// ErrBoom is a sentinel error: declared once, never written — clean.
var ErrBoom = errors.New("boom")

// table is built in init and read-only afterwards — clean.
var table [16]int

func init() {
	for i := range table {
		table[i] = i * i
	}
}

// counter is mutable package state.
var counter int

// Bump mutates a package-level variable.
func Bump() int {
	counter++
	return counter
}

// cache is mutable package state written through an element.
var cache = map[string]int{}

// Memoize writes an element of a package-level map.
func Memoize(k string, v int) {
	cache[k] = v
}

// registry is intentionally mutable; its writer justifies itself.
var registry []string

// Register demonstrates the escape hatch.
func Register(name string) {
	//sdclint:ignore globalmut demonstrating a justified mutable global
	registry = append(registry, name)
}

// Local shows that local mutation is, of course, fine.
func Local() int {
	n := 0
	n++
	return n
}

// Table reads the init-built table — clean.
func Table(i int) int {
	return table[i&15]
}
