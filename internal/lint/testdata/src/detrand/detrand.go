// Package detrand is analyzer test data: ambient randomness and wall-clock
// reads versus the sanctioned simrand path.
package detrand

import (
	"math/rand"
	"time"

	"farron/internal/simrand"
)

// Bad draws from ambient randomness and reads the wall clock.
func Bad(seed uint64) float64 {
	r := rand.New(rand.NewSource(int64(seed)))
	start := time.Now()
	_ = time.Since(start)
	return r.Float64()
}

// Clean draws from a seeded Source — the sanctioned path.
func Clean(seed uint64) float64 {
	src := simrand.New(seed)
	return src.Float64()
}

// CleanDuration shows that time *types* are fine; only clock reads are not.
func CleanDuration(d time.Duration) time.Duration {
	return 2 * d
}

// Suppressed demonstrates the escape hatch.
func Suppressed() time.Time {
	return time.Now() //sdclint:ignore detrand demonstrating the escape hatch
}
