package detrand

import (
	crand "crypto/rand"
)

// ReadEntropy shows an aliased forbidden import is still caught.
func ReadEntropy(b []byte) {
	_, _ = crand.Read(b)
}
