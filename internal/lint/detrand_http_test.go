package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestDetrandHTTPPolicy checks the network quarantine: only the screening
// service's transport edge may import net/http — the cmd layer included in
// the ban, like the os/exec policy, because commands delegate their
// listeners to internal/serve.
func TestDetrandHTTPPolicy(t *testing.T) {
	base := filepath.Join("testdata", "src", "httpq")
	cases := []struct {
		dir  string
		want []string // substrings of expected messages, in order
	}{
		{filepath.Join(base, "internal", "serve"), nil},
		{filepath.Join(base, "internal", "sim"), []string{"restricted to internal/serve"}},
		{filepath.Join(base, "cmd", "tool"), []string{"restricted to internal/serve"}},
	}
	for _, c := range cases {
		pkgs, err := Load(".", c.dir)
		if err != nil {
			t.Fatalf("load %s: %v", c.dir, err)
		}
		diags := Run(pkgs, []*Analyzer{Detrand})
		if len(diags) != len(c.want) {
			t.Errorf("%s: got %d findings (%v), want %d", c.dir, len(diags), diags, len(c.want))
			continue
		}
		for i, sub := range c.want {
			if !strings.Contains(diags[i].Message, sub) {
				t.Errorf("%s: finding %q does not mention %q", c.dir, diags[i].Message, sub)
			}
		}
	}
}

func TestIsServePkg(t *testing.T) {
	cases := map[string]bool{
		"farron/internal/serve":         true,
		"internal/serve":                true,
		"farron/internal/serve/deeper":  false,
		"farron/internal/engine":        false,
		"farron/cmd/sdcserve":           false,
		"farron/internal/observability": false,
	}
	for path, want := range cases {
		if got := isServePkg(path); got != want {
			t.Errorf("isServePkg(%q) = %v, want %v", path, got, want)
		}
	}
}

func TestIsHTTPPkg(t *testing.T) {
	cases := map[string]bool{
		"net/http":          true,
		"net/http/httputil": true,
		"net/http/pprof":    true,
		"net":               false,
		"net/url":           false,
		"nethttp":           false,
	}
	for path, want := range cases {
		if got := isHTTPPkg(path); got != want {
			t.Errorf("isHTTPPkg(%q) = %v, want %v", path, got, want)
		}
	}
}
