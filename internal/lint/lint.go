// Package lint implements sdclint, the repo's determinism and safety
// static-analysis pass. Every number this project reproduces from the paper
// is only trustworthy because a simulation run is bit-for-bit reproducible
// from its seed; lint machine-checks the conventions that keep it so (no
// ambient randomness or wall-clock reads, no order-dependent map iteration,
// no mutable package state, no simrand.Source shared across goroutines).
//
// The engine is deliberately stdlib-only: packages are enumerated, parsed
// and type-checked with go/parser, go/types and go/importer (see load.go),
// so the linter adds no module dependencies to the reproduction.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is a single finding, positioned at file:line:column.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// An Analyzer is one named determinism rule. Run inspects a fully
// type-checked package and reports findings through the Pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns every analyzer sdclint ships, in reporting order. The first
// four are per-package syntactic checks; frozenmut, errsink and shardkey
// consume the interprocedural module facts (interproc.go).
func All() []*Analyzer {
	return []*Analyzer{Detrand, MapOrder, GlobalMut, SrcShare, FrozenMut, ErrSink, ShardKey}
}

// ByName resolves a comma-separated analyzer list ("detrand,maporder").
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown analyzer %q", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Mod is the whole-module interprocedural view, shared by every pass of
	// one Run (the same packages, so the same call graph and summaries).
	Mod   *Module
	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the analyzers to every package, drops findings suppressed by
// //sdclint:ignore directives, and returns the rest sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	mod := BuildModule(pkgs)
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			a.Run(&Pass{Analyzer: a, Pkg: pkg, Mod: mod, diags: &diags})
		}
	}
	diags = suppress(pkgs, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// ignoreDirective is the comment prefix that suppresses findings:
//
//	//sdclint:ignore <analyzer>[,<analyzer>...] [reason]
//
// A directive suppresses the named analyzers on its own line and on the
// line directly below it (so it works both as a trailing comment and as a
// standalone comment above the offending line).
const ignoreDirective = "//sdclint:ignore"

// suppress filters out diagnostics covered by ignore directives.
func suppress(pkgs []*Package, diags []Diagnostic) []Diagnostic {
	// ignores maps filename -> line -> analyzer names suppressed there.
	ignores := make(map[string]map[int]map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names, ok := parseIgnore(c.Text)
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					byLine := ignores[pos.Filename]
					if byLine == nil {
						byLine = make(map[int]map[string]bool)
						ignores[pos.Filename] = byLine
					}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						set := byLine[line]
						if set == nil {
							set = make(map[string]bool)
							byLine[line] = set
						}
						for _, n := range names {
							set[n] = true
						}
					}
				}
			}
		}
	}
	out := diags[:0]
	for _, d := range diags {
		if ignores[d.Pos.Filename][d.Pos.Line][d.Analyzer] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// parseIgnore extracts the analyzer names from an ignore directive comment.
// It returns ok=false for comments that are not (well-formed) directives; a
// bare "//sdclint:ignore" with no analyzer names suppresses nothing, so a
// typo never silently widens the suppression.
func parseIgnore(text string) (names []string, ok bool) {
	if !strings.HasPrefix(text, ignoreDirective) {
		return nil, false
	}
	rest := text[len(ignoreDirective):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, false // e.g. //sdclint:ignoreXXX
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false
	}
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names, len(names) > 0
}

// isSimrandSource reports whether t is simrand.Source or *simrand.Source.
// The match is by package-path suffix so it also holds inside the
// analyzer's own testdata packages, whose synthetic import paths merely end
// in "/simrand".
func isSimrandSource(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Source" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "simrand" || strings.HasSuffix(path, "/simrand")
}

// enclosingFuncBody returns the body of the innermost function declaration
// or literal in stack (a path of ancestor nodes, outermost first).
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}
