package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestDetrandWallclockPolicy checks both halves of the quarantine bargain:
// the wallclock package itself may read the real clock without findings,
// while only the engine and cmd layers may import it.
func TestDetrandWallclockPolicy(t *testing.T) {
	base := filepath.Join("testdata", "src", "wallclock")
	cases := []struct {
		dir  string
		want []string // substrings of expected messages, in order
	}{
		{filepath.Join(base, "internal", "engine", "wallclock"), nil},
		{filepath.Join(base, "internal", "engine", "runner"), nil},
		{filepath.Join(base, "cmd", "tool"), nil},
		{filepath.Join(base, "internal", "sim"), []string{"restricted to the engine and cmd layers"}},
	}
	for _, c := range cases {
		pkgs, err := Load(".", c.dir)
		if err != nil {
			t.Fatalf("load %s: %v", c.dir, err)
		}
		diags := Run(pkgs, []*Analyzer{Detrand})
		if len(diags) != len(c.want) {
			t.Errorf("%s: got %d findings (%v), want %d", c.dir, len(diags), diags, len(c.want))
			continue
		}
		for i, sub := range c.want {
			if !strings.Contains(diags[i].Message, sub) {
				t.Errorf("%s: finding %q does not mention %q", c.dir, diags[i].Message, sub)
			}
		}
	}
}

func TestMayImportWallclock(t *testing.T) {
	cases := map[string]bool{
		"farron/internal/engine":           true,
		"farron/internal/engine/wallclock": true,
		"farron/internal/engine/cliflags":  true,
		"farron/cmd/sdcbench":              true,
		"farron/internal/experiments":      false,
		"farron/internal/testkit":          false,
		"farron":                           false,
	}
	for path, want := range cases {
		if got := mayImportWallclock(path); got != want {
			t.Errorf("mayImportWallclock(%q) = %v, want %v", path, got, want)
		}
	}
}
