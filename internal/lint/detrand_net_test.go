package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestDetrandNetPolicy checks the raw-socket quarantine: only the two
// transport edges — the cluster shard transport and the screening service's
// status API — may import net. The cmd layer is included in the ban, like
// the os/exec and net/http policies, because commands delegate their
// sockets to those packages.
func TestDetrandNetPolicy(t *testing.T) {
	base := filepath.Join("testdata", "src", "netq")
	cases := []struct {
		dir  string
		want []string // substrings of expected messages, in order
	}{
		{filepath.Join(base, "internal", "engine", "cluster"), nil},
		{filepath.Join(base, "internal", "serve"), nil},
		{filepath.Join(base, "internal", "sim"), []string{"restricted to internal/engine/cluster and internal/serve"}},
		{filepath.Join(base, "cmd", "tool"), []string{"restricted to internal/engine/cluster and internal/serve"}},
	}
	for _, c := range cases {
		pkgs, err := Load(".", c.dir)
		if err != nil {
			t.Fatalf("load %s: %v", c.dir, err)
		}
		diags := Run(pkgs, []*Analyzer{Detrand})
		if len(diags) != len(c.want) {
			t.Errorf("%s: got %d findings (%v), want %d", c.dir, len(diags), diags, len(c.want))
			continue
		}
		for i, sub := range c.want {
			if !strings.Contains(diags[i].Message, sub) {
				t.Errorf("%s: finding %q does not mention %q", c.dir, diags[i].Message, sub)
			}
		}
	}
}

func TestIsClusterPkg(t *testing.T) {
	cases := map[string]bool{
		"farron/internal/engine/cluster":        true,
		"internal/engine/cluster":               true,
		"farron/internal/engine/cluster/deeper": false,
		"farron/internal/engine/fanout":         false,
		"farron/internal/serve":                 false,
		"farron/cmd/sdcfleet":                   false,
	}
	for path, want := range cases {
		if got := isClusterPkg(path); got != want {
			t.Errorf("isClusterPkg(%q) = %v, want %v", path, got, want)
		}
	}
}

// TestMayImportNet pins the exact net rule: only package net itself is
// restricted — subpackages either have their own quarantine (net/http) or
// carry no socket (net/netip) — and both transport edges are sanctioned.
func TestMayImportNet(t *testing.T) {
	edges := map[string]bool{
		"farron/internal/engine/cluster": true,
		"farron/internal/serve":          true,
		"farron/internal/engine/fanout":  false,
		"farron/internal/sim":            false,
	}
	for path, want := range edges {
		if got := mayImportNet(path); got != want {
			t.Errorf("mayImportNet(%q) = %v, want %v", path, got, want)
		}
	}
}
