package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FrozenMut flags writes that reach state frozen at construction. A type
// opts in with a directive on its declaration:
//
//	//sdclint:frozen [ctors=Name1,Name2] [reason]
//
// Construction is the only mutating phase: the construction set of a frozen
// type is every same-package function whose results include the type (the
// constructor convention), any functions named in ctors=, and everything
// those functions call transitively within the package. Outside that set
// the analyzer reports:
//
//   - direct writes into the frozen value's referenced state (field
//     assignments through a pointer, element writes into its slices/maps,
//     however deeply nested the access path);
//   - writes through aliases: a local assigned from a frozen value's field
//     or from an accessor method that returns receiver-reachable memory
//     (the shared-index contract of engine.Ctx and testkit.Suite);
//   - mutation via callees: passing the frozen value, or an alias of its
//     state, to a function whose interprocedural summary says it writes
//     that parameter (sort.Slice on a shared index, a method that advances
//     a held *simrand.Source, a helper that re-populates a map).
//
// The repo's frozen types are engine.Ctx, testkit.Suite and its compiled
// Testcase indexes, and fleet's per-CPU detection plans — the shared state
// every shard of a parallel run reads lock-free. A post-freeze write there
// is this testbed's own silent data corruption: results stop being a pure
// function of the seed, and only under contention.
var FrozenMut = &Analyzer{
	Name: "frozenmut",
	Doc:  "flag writes reaching //sdclint:frozen state after construction, including via aliases and callees",
	Run:  runFrozenMut,
}

// frozenType is one //sdclint:frozen declaration.
type frozenType struct {
	tn  *types.TypeName
	pkg *Package
}

// collectFrozen scans type declarations for //sdclint:frozen directives and
// computes the per-package construction sets into m.ctors.
func (m *Module) collectFrozen() {
	m.ctors = make(map[*types.Func]bool)
	extraCtors := make(map[*types.Package]map[string]bool)
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.TYPE {
					continue
				}
				for _, spec := range gd.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					names, ok := frozenDirective(gd.Doc, ts.Doc, ts.Comment)
					if !ok {
						continue
					}
					tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
					if !ok {
						continue
					}
					m.frozen[tn] = &frozenType{tn: tn, pkg: pkg}
					if len(names) > 0 {
						set := extraCtors[tn.Pkg()]
						if set == nil {
							set = make(map[string]bool)
							extraCtors[tn.Pkg()] = set
						}
						for _, n := range names {
							set[n] = true
						}
					}
				}
			}
		}
	}
	if len(m.frozen) == 0 {
		return
	}

	// Seed the construction sets: same-package functions returning the
	// frozen type (by convention, its constructors) plus ctors= extras.
	var worklist []*types.Func
	for _, node := range m.sortedFuncs() {
		fn := node.Fn
		frozenPkgFunc := false
		returnsFrozen := false
		for tn := range m.frozen {
			if fn.Pkg() != tn.Pkg() {
				continue
			}
			frozenPkgFunc = true
			if resultsInclude(node.Decl, node.Pkg.Info, tn) {
				returnsFrozen = true
			}
		}
		if !frozenPkgFunc {
			continue
		}
		if returnsFrozen || extraCtors[fn.Pkg()][fn.Name()] {
			m.ctors[fn] = true
			worklist = append(worklist, fn)
		}
	}
	// Close over same-package callees: helpers invoked during construction
	// (index builders, freeze methods) are part of the construction phase.
	for len(worklist) > 0 {
		fn := worklist[len(worklist)-1]
		worklist = worklist[:len(worklist)-1]
		node := m.Funcs[fn]
		if node == nil {
			continue
		}
		for _, cs := range node.calls {
			for _, t := range cs.targets {
				if t.Pkg() == fn.Pkg() && m.Funcs[t] != nil && !m.ctors[t] {
					m.ctors[t] = true
					worklist = append(worklist, t)
				}
			}
		}
	}
}

// frozenDirective extracts an //sdclint:frozen directive from the doc
// groups, returning any ctors= names.
func frozenDirective(groups ...*ast.CommentGroup) (ctors []string, ok bool) {
	const directive = "//sdclint:frozen"
	for _, cg := range groups {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, found := strings.CutPrefix(c.Text, directive)
			if !found || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
				continue
			}
			for _, field := range strings.Fields(rest) {
				if list, isCtors := strings.CutPrefix(field, "ctors="); isCtors {
					for _, n := range strings.Split(list, ",") {
						if n = strings.TrimSpace(n); n != "" {
							ctors = append(ctors, n)
						}
					}
				}
			}
			return ctors, true
		}
	}
	return nil, false
}

// resultsInclude reports whether the function's results mention the type
// (directly, behind a pointer, or as a slice/array element).
func resultsInclude(fd *ast.FuncDecl, info *types.Info, tn *types.TypeName) bool {
	if fd.Type.Results == nil {
		return false
	}
	for _, field := range fd.Type.Results.List {
		t := info.TypeOf(field.Type)
		for {
			switch u := t.(type) {
			case *types.Pointer:
				t = u.Elem()
				continue
			case *types.Slice:
				t = u.Elem()
				continue
			case *types.Array:
				t = u.Elem()
				continue
			}
			break
		}
		if named, ok := t.(*types.Named); ok && named.Obj() == tn {
			return true
		}
	}
	return false
}

// frozenTypeName returns the frozen TypeName behind t (unwrapping one level
// of pointer), or nil.
func (m *Module) frozenTypeName(t types.Type) *types.TypeName {
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := m.frozen[named.Obj()]; ok {
		return named.Obj()
	}
	return nil
}

// frozenWriteTarget walks an lvalue from the outside in and returns the
// frozen type whose referenced state the write lands in, if any: a write
// escapes into frozen state when an indirection step (pointer deref, slice
// or map element, field through a pointer) stands between the write and a
// frozen-typed prefix.
func (m *Module) frozenWriteTarget(lv ast.Expr, info *types.Info) *types.TypeName {
	escaped := false
	e := lv
	for e != nil {
		e = unparen(e)
		if escaped {
			if tn := m.frozenTypeName(info.TypeOf(e)); tn != nil {
				return tn
			}
		}
		switch x := e.(type) {
		case *ast.StarExpr:
			escaped = true
			e = x.X
		case *ast.IndexExpr:
			switch info.TypeOf(x.X).Underlying().(type) {
			case *types.Slice, *types.Map, *types.Pointer:
				escaped = true
			}
			e = x.X
		case *ast.SelectorExpr:
			if t := info.TypeOf(x.X); t != nil {
				if _, ok := t.Underlying().(*types.Pointer); ok {
					escaped = true
				}
			}
			e = x.X
		default:
			e = nil
		}
	}
	return nil
}

// frozenAliasSource reports whether the expression's value aliases frozen
// state: it has a frozen-typed prefix reached through field/element access,
// or through an accessor method whose summary says it returns
// receiver-reachable memory.
func (m *Module) frozenAliasSource(e ast.Expr, info *types.Info) *types.TypeName {
	for e != nil {
		e = unparen(e)
		if tn := m.frozenTypeName(info.TypeOf(e)); tn != nil {
			return tn
		}
		switch x := e.(type) {
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				e = x.X
			} else {
				e = nil
			}
		case *ast.CallExpr:
			// Only step through accessors that hand out shared internals.
			sel, ok := unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return nil
			}
			s := info.Selections[sel]
			if s == nil || s.Kind() != types.MethodVal {
				return nil
			}
			sum := m.summaryOf(s.Obj().(*types.Func))
			if sum == nil || !sum.ReturnsRecvAlias {
				return nil
			}
			e = sel.X
		default:
			e = nil
		}
	}
	return nil
}

func runFrozenMut(pass *Pass) {
	m := pass.Mod
	if len(m.frozen) == 0 {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := info.Defs[fd.Name].(*types.Func)
			m.checkFrozenFunc(pass, fn, fd)
		}
	}
}

// checkFrozenFunc analyzes one function (literals included, attributed to
// it) for post-construction mutation of frozen state.
func (m *Module) checkFrozenFunc(pass *Pass, fn *types.Func, fd *ast.FuncDecl) {
	info := pass.Pkg.Info

	// exempt reports whether this function may mutate tn: it is part of
	// the construction set of tn's own package.
	exempt := func(tn *types.TypeName) bool {
		return fn != nil && m.ctors[fn] && fn.Pkg() == tn.Pkg()
	}

	// Aliases of frozen state held in locals: ids := ctx.KnownErrs(id),
	// tcs := c.Suite.Testcases, entries := plan.entries. Two passes so an
	// alias-of-alias assignment above its source still registers.
	aliases := make(map[types.Object]*types.TypeName)
	aliasOf := func(e ast.Expr) *types.TypeName {
		if v := refRootVar(e, info); v != nil {
			if tn, ok := aliases[v]; ok {
				return tn
			}
		}
		if !isRefType(info.TypeOf(e)) {
			return nil
		}
		return m.frozenAliasSource(e, info)
	}
	for pass := 0; pass < 2; pass++ {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			st, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			var src *types.TypeName
			for _, rhs := range st.Rhs {
				if tn := aliasOf(rhs); tn != nil {
					src = tn
				}
			}
			if src == nil {
				return true
			}
			for _, lhs := range st.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if obj := info.ObjectOf(id); obj != nil && isRefType(obj.Type()) {
					// A frozen-typed local is caught by the type-based
					// rules directly; aliases cover everything else.
					if m.frozenTypeName(obj.Type()) == nil {
						aliases[obj] = src
					}
				}
			}
			return true
		})
	}

	report := func(pos token.Pos, tn *types.TypeName, format string, args ...any) {
		if exempt(tn) {
			return
		}
		msg := fmt.Sprintf(format, args...)
		pass.Reportf(pos, "%s; %s.%s is frozen after construction and shared lock-free across shards — rebuild instead of mutating, or justify with //sdclint:ignore frozenmut",
			msg, tn.Pkg().Name(), tn.Name())
	}

	// Direct writes and writes through aliases.
	forEachWrite(fd.Body, func(lv ast.Expr) {
		if tn := m.frozenWriteTarget(lv, info); tn != nil {
			report(lv.Pos(), tn, "write into frozen %s state", tn.Name())
			return
		}
		if root := rootIdent(lv, info); root != nil && writeEscapes(lv, info) {
			if obj := info.ObjectOf(root); obj != nil {
				if tn, ok := aliases[obj]; ok {
					report(lv.Pos(), tn, "write through %q, which aliases frozen %s state", root.Name, tn.Name())
				}
			}
		}
	})

	// Mutation via callees: frozen state (or an alias of it) passed to a
	// function whose summary says it writes that argument.
	if node := m.Funcs[fn]; node != nil {
		for _, cs := range node.calls {
			m.forEachMutatedArg(cs, info, func(arg ast.Expr) {
				tn := m.frozenAliasSource(arg, info)
				if tn == nil {
					if v := refRootVar(arg, info); v != nil {
						tn = aliases[v]
					}
				}
				if tn == nil {
					return
				}
				report(arg.Pos(), tn, "%s may mutate frozen %s state passed as %s",
					types.ExprString(cs.call.Fun), tn.Name(), types.ExprString(arg))
			})
		}
	}
}
