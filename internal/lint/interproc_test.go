package lint

import (
	"strings"
	"testing"
)

// TestInterprocSummaries pins the summary facts the analyzers lean on,
// computed against the real tree: testkit.Suite's accessors divide into
// alias-returning (Rng hands out the held Source, InstrUsers the shared
// index slice) and fresh-returning (SortedIDs builds a new slice), and the
// suite constructor sits in the frozen type's construction set along with
// the helpers it calls.
func TestInterprocSummaries(t *testing.T) {
	pkgs, err := Load(".", "../testkit")
	if err != nil {
		t.Fatal(err)
	}
	mod := BuildModule(pkgs)

	// find matches a substring of the types.Func full name, e.g.
	// "Suite).Rng" for a method or "testkit.newSuite" for a function.
	find := func(pattern string) *FuncNode {
		t.Helper()
		for _, node := range mod.Funcs {
			if strings.Contains(node.Fn.FullName(), pattern) {
				return node
			}
		}
		t.Fatalf("no function matching %q in module", pattern)
		return nil
	}

	if !find("Suite).Rng").Summary.ReturnsRecvAlias {
		t.Error("Suite.Rng should be summarized as returning receiver-reachable memory")
	}
	if !find("Suite).InstrUsers").Summary.ReturnsRecvAlias {
		t.Error("Suite.InstrUsers should be summarized as returning the shared index slice")
	}
	if find("Suite).SortedIDs").Summary.ReturnsRecvAlias {
		t.Error("Suite.SortedIDs returns a fresh slice; summary claims it aliases the receiver")
	}
	for _, pattern := range []string{
		"testkit.newSuite",
		"Suite).buildIndex",
		"Suite).generate",
	} {
		if node := find(pattern); !mod.ctors[node.Fn] {
			t.Errorf("%s should be in the Suite construction set", node.Fn.FullName())
		}
	}
}
