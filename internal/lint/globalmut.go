package lint

import (
	"go/ast"
	"go/types"
)

// GlobalMut flags writes to package-level variables outside package
// initialization. Mutable package state couples otherwise-independent
// simulation runs executed in one process (tests, the experiment harness,
// future sharded execution), so a result stops being a pure function of its
// seed. Lookup tables built in init and sentinel errors are naturally
// exempt — they are never written after initialization. Intentional mutable
// globals (there is an allowlist of synchronization types, and a
// //sdclint:ignore globalmut escape hatch) must justify themselves
// explicitly.
var GlobalMut = &Analyzer{
	Name: "globalmut",
	Doc:  "flag writes to package-level variables outside init; package state must be immutable across runs",
	Run:  runGlobalMut,
}

// globalMutAllowedTypes are named types whose package-level instances exist
// to be mutated and are concurrency-safe by design.
var globalMutAllowedTypes = map[string]bool{
	"sync.Once":      true,
	"sync.Mutex":     true,
	"sync.RWMutex":   true,
	"sync.Pool":      true,
	"sync.WaitGroup": true,
}

func runGlobalMut(pass *Pass) {
	info := pass.Pkg.Info
	report := func(id *ast.Ident, verb string) {
		obj, ok := info.ObjectOf(id).(*types.Var)
		if !ok || obj.IsField() || obj.Pkg() == nil {
			return
		}
		if obj.Parent() != obj.Pkg().Scope() {
			return // not package-level
		}
		if named, ok := obj.Type().(*types.Named); ok {
			key := ""
			if p := named.Obj().Pkg(); p != nil {
				key = p.Path() + "." + named.Obj().Name()
			}
			if globalMutAllowedTypes[key] {
				return
			}
		}
		pass.Reportf(id.Pos(), "%s package-level variable %s outside init breaks cross-run reproducibility; pass state explicitly or justify with //sdclint:ignore globalmut", verb, obj.Name())
	}
	for _, f := range pass.Pkg.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if inInitContext(stack) {
					return true
				}
				for _, lhs := range st.Lhs {
					if id := rootIdent(lhs, info); id != nil {
						report(id, "write to")
					}
				}
			case *ast.IncDecStmt:
				if inInitContext(stack) {
					return true
				}
				if id := rootIdent(st.X, info); id != nil {
					report(id, "mutation of")
				}
			case *ast.RangeStmt:
				if st.Tok.String() == "=" && !inInitContext(stack) {
					for _, e := range []ast.Expr{st.Key, st.Value} {
						if e == nil {
							continue
						}
						if id := rootIdent(e, info); id != nil {
							report(id, "write to")
						}
					}
				}
			}
			return true
		})
	}
}

// inInitContext reports whether the ancestor stack passes through a
// top-level func init() — where one-time writes to package state (table
// construction) are the accepted idiom.
func inInitContext(stack []ast.Node) bool {
	for _, n := range stack {
		if fd, ok := n.(*ast.FuncDecl); ok {
			return fd.Recv == nil && fd.Name.Name == "init"
		}
	}
	return false
}

// rootIdent unwraps index, selector, star and paren expressions to the
// identifier at the base of an lvalue ("x" in x[i].f), so element and field
// writes count as writes to the variable itself. A package-qualified name
// (pkg.Var) resolves to the selected variable, not the package name.
func rootIdent(e ast.Expr, info *types.Info) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg {
					return x.Sel
				}
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
