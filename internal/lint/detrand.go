package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// Detrand forbids ambient randomness and wall-clock reads. Every random
// decision in the simulation must flow through a seeded simrand.Source, and
// every timestamp through the discrete-event clock (internal/sched);
// math/rand, crypto/rand, time.Now and time.Since all smuggle in state that
// is not a function of the experiment seed, so a single call silently makes
// a "reproducible" result unreproducible — the repo's own flavour of a
// silent data corruption.
//
// Four quarantines exist. internal/engine/wallclock wraps time.Now for
// run-duration accounting (bench reports measure real elapsed time by
// definition), so the wall-clock rules are waived inside that package.
// In exchange, importing it is itself policed: only the engine layer and
// the commands may depend on wallclock, so a stray timestamp can never
// steer a simulation result. internal/engine/fanout is the analogous
// subprocess quarantine: the fan-out transport re-execs the current binary
// to distribute shards, so os/exec is permitted there and nowhere else —
// simulation code that shells out answers to the environment, not to its
// seed. internal/serve is the HTTP quarantine: the continuous screening
// service's status API is the module's one HTTP edge, so net/http is
// importable there and nowhere else — handlers read published snapshots,
// never feed the simulation. Raw sockets (package net) are confined the
// same way to the two transport edges that legitimately own one:
// internal/engine/cluster (the TCP shard transport's dialer and daemon
// listener) and internal/serve (the status API's bound listener). No other
// layer may grow a network dependency.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid math/rand, crypto/rand, wall-clock reads, and os/exec, net or net/http outside their quarantines; randomness must flow through simrand.Source",
	Run:  runDetrand,
}

// detrandForbiddenImports maps forbidden import paths to remediation hints.
var detrandForbiddenImports = map[string]string{
	"math/rand":    "derive randomness from a seeded simrand.Source",
	"math/rand/v2": "derive randomness from a seeded simrand.Source",
	"crypto/rand":  "derive randomness from a seeded simrand.Source",
}

// detrandForbiddenTimeFuncs lists time-package functions that read the wall
// clock. (time.Until is included: it is time.Now in disguise.)
var detrandForbiddenTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

// wallclockPkgSuffix identifies the sanctioned wall-clock quarantine
// package. Matching is by path suffix, like isSimrandSource, so the policy
// also holds for the analyzer's synthetic testdata packages.
const wallclockPkgSuffix = "internal/engine/wallclock"

// isWallclockPkg reports whether path is the quarantine package itself.
func isWallclockPkg(path string) bool {
	return path == wallclockPkgSuffix || strings.HasSuffix(path, "/"+wallclockPkgSuffix)
}

// execPkgPath is the import that spawns subprocesses; fanoutPkgSuffix
// identifies the one package allowed to use it — the engine's fan-out
// transport, which re-execs the current binary to distribute shards.
// Suffix matching mirrors the wallclock quarantine.
const (
	execPkgPath     = "os/exec"
	fanoutPkgSuffix = "internal/engine/fanout"
)

// isFanoutPkg reports whether path is the subprocess quarantine itself.
func isFanoutPkg(path string) bool {
	return path == fanoutPkgSuffix || strings.HasSuffix(path, "/"+fanoutPkgSuffix)
}

// httpPkgPrefix matches net/http and its subpackages; servePkgSuffix
// identifies the one package allowed to import them — the continuous
// screening service, whose transport edge serves the status API. Like the
// exec quarantine this is stricter than wallclock: even the cmd layer may
// not open sockets, cmd/sdcserve delegates to internal/serve.
const (
	httpPkgPrefix  = "net/http"
	servePkgSuffix = "internal/serve"
)

// isHTTPPkg reports whether path is net/http or one of its subpackages.
func isHTTPPkg(path string) bool {
	return path == httpPkgPrefix || strings.HasPrefix(path, httpPkgPrefix+"/")
}

// isServePkg reports whether path is the HTTP quarantine itself.
func isServePkg(path string) bool {
	return path == servePkgSuffix || strings.HasSuffix(path, "/"+servePkgSuffix)
}

// netPkgPath is the raw-socket import; clusterPkgSuffix identifies the TCP
// shard transport, one of the two packages allowed to use it. Exactly net
// is restricted — its subpackages split across the other quarantines
// (net/http is the serve rule above) or carry no socket (net/netip).
const (
	netPkgPath       = "net"
	clusterPkgSuffix = "internal/engine/cluster"
)

// isClusterPkg reports whether path is the TCP transport quarantine itself.
func isClusterPkg(path string) bool {
	return path == clusterPkgSuffix || strings.HasSuffix(path, "/"+clusterPkgSuffix)
}

// mayImportNet reports whether a package at path is a sanctioned transport
// edge: the cluster shard transport or the screening service's status API
// (whose listener binds ephemeral ports via net.Listen).
func mayImportNet(path string) bool {
	return isClusterPkg(path) || isServePkg(path)
}

// mayImportWallclock reports whether a package at path sits in a layer
// allowed to measure real elapsed time: the engine (orchestration) subtree
// or a command. Simulation packages must stay off the wall clock entirely.
func mayImportWallclock(path string) bool {
	for _, layer := range []string{"internal/engine", "cmd"} {
		if path == layer || strings.HasSuffix(path, "/"+layer) {
			return true
		}
		if i := strings.Index(path+"/", "/"+layer+"/"); i >= 0 {
			return true
		}
	}
	return false
}

func runDetrand(pass *Pass) {
	inWallclock := isWallclockPkg(pass.Pkg.ImportPath)
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if hint, ok := detrandForbiddenImports[path]; ok {
				pass.Reportf(imp.Pos(), "import of %s is forbidden in simulation code: %s", path, hint)
			}
			if isWallclockPkg(path) && !mayImportWallclock(pass.Pkg.ImportPath) {
				pass.Reportf(imp.Pos(), "import of %s is restricted to the engine and cmd layers; simulation code must not observe real elapsed time", path)
			}
			if path == execPkgPath && !isFanoutPkg(pass.Pkg.ImportPath) {
				pass.Reportf(imp.Pos(), "import of %s is restricted to %s; subprocess spawning belongs to the fan-out transport, nothing else may shell out", execPkgPath, fanoutPkgSuffix)
			}
			if isHTTPPkg(path) && !isServePkg(pass.Pkg.ImportPath) {
				pass.Reportf(imp.Pos(), "import of %s is restricted to %s; the network is a transport-edge concern of the screening service, simulation results must never depend on it", path, servePkgSuffix)
			}
			if path == netPkgPath && !mayImportNet(pass.Pkg.ImportPath) {
				pass.Reportf(imp.Pos(), "import of %s is restricted to %s and %s; raw sockets belong to the transport edges, nothing else may dial or listen", netPkgPath, clusterPkgSuffix, servePkgSuffix)
			}
		}
		if inWallclock {
			continue // the quarantine package wraps time.Now by design
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if detrandForbiddenTimeFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(), "time.%s reads the wall clock and breaks determinism; use the simulation clock (internal/sched)", fn.Name())
			}
			return true
		})
	}
}
