package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// Detrand forbids ambient randomness and wall-clock reads. Every random
// decision in the simulation must flow through a seeded simrand.Source, and
// every timestamp through the discrete-event clock (internal/sched);
// math/rand, crypto/rand, time.Now and time.Since all smuggle in state that
// is not a function of the experiment seed, so a single call silently makes
// a "reproducible" result unreproducible — the repo's own flavour of a
// silent data corruption.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid math/rand, crypto/rand and wall-clock reads; randomness must flow through simrand.Source",
	Run:  runDetrand,
}

// detrandForbiddenImports maps forbidden import paths to remediation hints.
var detrandForbiddenImports = map[string]string{
	"math/rand":    "derive randomness from a seeded simrand.Source",
	"math/rand/v2": "derive randomness from a seeded simrand.Source",
	"crypto/rand":  "derive randomness from a seeded simrand.Source",
}

// detrandForbiddenTimeFuncs lists time-package functions that read the wall
// clock. (time.Until is included: it is time.Now in disguise.)
var detrandForbiddenTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runDetrand(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if hint, ok := detrandForbiddenImports[path]; ok {
				pass.Reportf(imp.Pos(), "import of %s is forbidden in simulation code: %s", path, hint)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if detrandForbiddenTimeFuncs[fn.Name()] {
				pass.Reportf(sel.Pos(), "time.%s reads the wall clock and breaks determinism; use the simulation clock (internal/sched)", fn.Name())
			}
			return true
		})
	}
}
