package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestDetrandExecPolicy checks the subprocess quarantine: only the fan-out
// transport may import os/exec — the cmd layer included in the ban, unlike
// the wallclock policy, because nothing but the transport has a reason to
// shell out.
func TestDetrandExecPolicy(t *testing.T) {
	base := filepath.Join("testdata", "src", "exec")
	cases := []struct {
		dir  string
		want []string // substrings of expected messages, in order
	}{
		{filepath.Join(base, "internal", "engine", "fanout"), nil},
		{filepath.Join(base, "internal", "sim"), []string{"restricted to internal/engine/fanout"}},
		{filepath.Join(base, "cmd", "tool"), []string{"restricted to internal/engine/fanout"}},
	}
	for _, c := range cases {
		pkgs, err := Load(".", c.dir)
		if err != nil {
			t.Fatalf("load %s: %v", c.dir, err)
		}
		diags := Run(pkgs, []*Analyzer{Detrand})
		if len(diags) != len(c.want) {
			t.Errorf("%s: got %d findings (%v), want %d", c.dir, len(diags), diags, len(c.want))
			continue
		}
		for i, sub := range c.want {
			if !strings.Contains(diags[i].Message, sub) {
				t.Errorf("%s: finding %q does not mention %q", c.dir, diags[i].Message, sub)
			}
		}
	}
}

func TestIsFanoutPkg(t *testing.T) {
	cases := map[string]bool{
		"farron/internal/engine/fanout":   true,
		"internal/engine/fanout":          true,
		"farron/internal/engine":          false,
		"farron/internal/engine/cliflags": false,
		"farron/cmd/sdcbench":             false,
		"farron/internal/experiments":     false,
	}
	for path, want := range cases {
		if got := isFanoutPkg(path); got != want {
			t.Errorf("isFanoutPkg(%q) = %v, want %v", path, got, want)
		}
	}
}
