package lint

import (
	"reflect"
	"testing"
)

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text  string
		names []string
		ok    bool
	}{
		{"//sdclint:ignore detrand", []string{"detrand"}, true},
		{"//sdclint:ignore detrand wall clock is display-only", []string{"detrand"}, true},
		{"//sdclint:ignore detrand,maporder reason", []string{"detrand", "maporder"}, true},
		{"//sdclint:ignore", nil, false},            // bare directive suppresses nothing
		{"//sdclint:ignorexyz detrand", nil, false}, // not a directive
		{"// plain comment", nil, false},
		{"//sdclint:ignore ,", nil, false},
	}
	for _, c := range cases {
		names, ok := parseIgnore(c.text)
		if ok != c.ok || !reflect.DeepEqual(names, c.names) {
			t.Errorf("parseIgnore(%q) = %v, %v; want %v, %v", c.text, names, ok, c.names, c.ok)
		}
	}
}

func TestByName(t *testing.T) {
	as, err := ByName("detrand, srcshare")
	if err != nil || len(as) != 2 || as[0].Name != "detrand" || as[1].Name != "srcshare" {
		t.Fatalf("ByName = %v, %v", as, err)
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("ByName(bogus) succeeded, want error")
	}
	if _, err := ByName(""); err == nil {
		t.Fatal("ByName(empty) succeeded, want error")
	}
}

func TestAllAnalyzersHaveDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v incomplete", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}
