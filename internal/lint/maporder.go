package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder flags range-over-map loops whose bodies are sensitive to
// iteration order: Go randomizes map order per run, so a body that appends
// to a slice, writes output, or consumes randomness produces a different
// result (or drains a simrand stream in a different order) on every
// execution. The deterministic idiom is to collect the keys, sort them, and
// iterate over the sorted slice — MapOrder recognizes that key-collection
// idiom and leaves it alone as long as the collected slice really is sorted
// in the same function.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-dependent effects (append, output, randomness) inside range-over-map loops",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		inspectStack(f, func(n ast.Node, stack []ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := info.Types[rng.X]
			if !ok {
				return true
			}
			if _, ok := tv.Type.Underlying().(*types.Map); !ok {
				return true
			}

			// The sanctioned idiom: a loop that only collects keys (or
			// key-derived values) into a slice which the enclosing function
			// then sorts.
			if slice, ok := keyCollectionTarget(rng, info); ok {
				if body := enclosingFuncBody(stack); body != nil && sortsSlice(body, slice, info) {
					return true
				}
				pass.Reportf(rng.Pos(), "values collected from map iteration into %q are never sorted; sort them before use", slice.Name())
				return true
			}

			if node, what := orderDependentEffect(rng.Body, info); node != nil {
				pass.Reportf(node.Pos(), "%s inside range over map %s depends on map iteration order; iterate over sorted keys instead",
					what, types.ExprString(rng.X))
			}
			return true
		})
	}
}

// keyCollectionTarget reports whether the range body is exactly one
// append-to-slice assignment ("ks = append(ks, ...)") and returns the
// slice's object.
func keyCollectionTarget(rng *ast.RangeStmt, info *types.Info) (*types.Var, bool) {
	if len(rng.Body.List) != 1 {
		return nil, false
	}
	assign, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return nil, false
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || !isBuiltinAppend(call, info) || len(call.Args) < 2 {
		return nil, false
	}
	dst, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	lhsObj, _ := info.ObjectOf(lhs).(*types.Var)
	dstObj, _ := info.ObjectOf(dst).(*types.Var)
	if lhsObj == nil || lhsObj != dstObj {
		return nil, false
	}
	// Appended values must be pure projections of the iteration variables:
	// no calls (which could print or consume randomness on the side).
	for _, arg := range call.Args[1:] {
		pure := true
		ast.Inspect(arg, func(m ast.Node) bool {
			if c, ok := m.(*ast.CallExpr); ok && !isBuiltinAppend(c, info) {
				if _, isConv := info.Types[c.Fun]; !isConv || !info.Types[c.Fun].IsType() {
					pure = false
					return false
				}
			}
			return true
		})
		if !pure {
			return nil, false
		}
	}
	return lhsObj, true
}

// sortsSlice reports whether body contains a sorting call that mentions
// obj among its arguments — either a call into package sort or slices, or a
// local helper whose name starts with "sort"/"Sort" (the repo idiom, e.g.
// testkit's sortInstrs).
func sortsSlice(body *ast.BlockStmt, obj *types.Var, info *types.Info) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || !isSortingFunc(call.Fun, info) {
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return true
	})
	return found
}

func isSortingFunc(fun ast.Expr, info *types.Info) bool {
	switch f := fun.(type) {
	case *ast.SelectorExpr:
		fn, ok := info.Uses[f.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return false
		}
		p := fn.Pkg().Path()
		return p == "sort" || p == "slices"
	case *ast.Ident:
		fn, ok := info.Uses[f].(*types.Func)
		return ok && (strings.HasPrefix(fn.Name(), "sort") || strings.HasPrefix(fn.Name(), "Sort"))
	}
	return false
}

// orderDependentEffect returns the first node in body whose effect depends
// on iteration order, with a short description of what it does.
func orderDependentEffect(body *ast.BlockStmt, info *types.Info) (ast.Node, string) {
	var node ast.Node
	var what string
	ast.Inspect(body, func(n ast.Node) bool {
		if node != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isBuiltinAppend(call, info):
			node, what = call, "append"
		case isOutputCall(call, info):
			node, what = call, "output write"
		case isSimrandCall(call, info):
			node, what = call, "randomness consumption"
		}
		return node == nil
	})
	return node, what
}

func isBuiltinAppend(call *ast.CallExpr, info *types.Info) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// isOutputCall matches fmt print functions and Write-family methods
// (io.Writer, strings.Builder, bytes.Buffer, ...).
func isOutputCall(call *ast.CallExpr, info *types.Info) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
		(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")) {
		return true
	}
	if info.Selections[sel] != nil { // method call
		switch fn.Name() {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return true
		}
	}
	return false
}

// isSimrandCall matches method calls on a simrand.Source receiver.
func isSimrandCall(call *ast.CallExpr, info *types.Info) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s := info.Selections[sel]
	return s != nil && s.Kind() == types.MethodVal && isSimrandSource(s.Recv())
}

// inspectStack is ast.Inspect with an ancestor stack (outermost first,
// excluding n itself).
func inspectStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}
