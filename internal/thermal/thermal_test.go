package thermal

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"farron/internal/simrand"
)

func newPkg(t *testing.T, cores int) *Package {
	t.Helper()
	return New(DefaultConfig(), cores, simrand.New(1))
}

func TestIdleTemperature(t *testing.T) {
	p := newPkg(t, 16)
	idle := p.PackageTempC()
	if idle < 40 || idle > 50 {
		t.Errorf("idle package temp = %v, want ~45 (paper's idle)", idle)
	}
}

func TestSingleCoreLoadTemp(t *testing.T) {
	p := newPkg(t, 16)
	p.SetLoad(3, 1, 1)
	for i := 0; i < 600; i++ {
		p.Step(time.Second)
	}
	core := p.CoreTempC(3)
	if core < 52 || core > 65 {
		t.Errorf("busy core temp = %v, want ~55-60", core)
	}
	// The busy core must read hotter than an idle sibling.
	idleSibling := p.CoreTempC(7)
	if core <= idleSibling {
		t.Errorf("busy core %v not hotter than idle sibling %v", core, idleSibling)
	}
}

func TestAllCoreBurnIn(t *testing.T) {
	p := newPkg(t, 16)
	for i := 0; i < 16; i++ {
		p.SetLoad(i, 1, 1)
	}
	for i := 0; i < 900; i++ {
		p.Step(time.Second)
	}
	temp := p.PackageTempC()
	if temp < 80 || temp > 100 {
		t.Errorf("burn-in package temp = %v, want ~85-95", temp)
	}
}

func TestSharedCoolingNeighbourEffect(t *testing.T) {
	// Observation 10: a defective core heats up when *other* cores are
	// busy, because cooling is shared.
	p := newPkg(t, 16)
	defectiveIdle := func() float64 {
		for i := 0; i < 600; i++ {
			p.Step(time.Second)
		}
		return p.CoreTempC(0)
	}
	aloneTemp := defectiveIdle()
	// More busy neighbours, monotonically hotter defective core.
	prev := aloneTemp
	for busy := 4; busy <= 15; busy += 4 {
		for i := 1; i <= busy; i++ {
			p.SetLoad(i, 1, 1)
		}
		temp := defectiveIdle()
		if temp <= prev {
			t.Errorf("with %d busy neighbours, core0 temp %v not above %v", busy, temp, prev)
		}
		prev = temp
	}
	if prev-aloneTemp < 10 {
		t.Errorf("15 busy neighbours only raised core0 by %v degC", prev-aloneTemp)
	}
}

func TestRemainingHeat(t *testing.T) {
	// Observation 10: a hot testcase X leaves heat behind that testcase Y
	// benefits from.
	p := newPkg(t, 8)
	// Run "X": all cores, high intensity, 10 minutes.
	for i := 0; i < 8; i++ {
		p.SetLoad(i, 1, 1.3)
	}
	for i := 0; i < 600; i++ {
		p.Step(time.Second)
	}
	p.ClearLoads()
	p.SetLoad(0, 1, 0.5) // light testcase Y
	p.Step(10 * time.Second)
	afterX := p.CoreTempC(0)

	// Same light testcase Y from cold.
	q := newPkg(t, 8)
	q.SetLoad(0, 1, 0.5)
	q.Step(10 * time.Second)
	cold := q.CoreTempC(0)

	if afterX-cold < 10 {
		t.Errorf("remaining heat effect too small: afterX=%v cold=%v", afterX, cold)
	}
}

func TestFrameworkScaleCools(t *testing.T) {
	// Observation 10: a more efficient toolchain framework runs cooler.
	hot := newPkg(t, 8)
	cool := newPkg(t, 8)
	cool.SetFrameworkScale(0.7)
	for i := 0; i < 8; i++ {
		hot.SetLoad(i, 1, 1)
		cool.SetLoad(i, 1, 1)
	}
	for i := 0; i < 600; i++ {
		hot.Step(time.Second)
		cool.Step(time.Second)
	}
	if cool.PackageTempC() >= hot.PackageTempC() {
		t.Errorf("efficient framework temp %v not below %v", cool.PackageTempC(), hot.PackageTempC())
	}
}

func TestCoolingBoost(t *testing.T) {
	p := newPkg(t, 8)
	for i := 0; i < 8; i++ {
		p.SetLoad(i, 1, 1)
	}
	noBoost := p.SteadyStateC()
	p.SetCoolingBoost(0.5)
	boosted := p.SteadyStateC()
	if boosted >= noBoost {
		t.Errorf("cooling boost did not lower steady state: %v >= %v", boosted, noBoost)
	}
}

func TestMonotoneApproach(t *testing.T) {
	// Property: temperature approaches steady state monotonically under
	// constant load.
	f := func(loadRaw, startRaw uint8) bool {
		p := New(DefaultConfig(), 8, simrand.New(2))
		util := float64(loadRaw%101) / 100
		for i := 0; i < 8; i++ {
			p.SetLoad(i, util, 1)
		}
		p.ForceTemp(25 + float64(startRaw%76))
		ss := p.SteadyStateC()
		prevGap := math.Abs(p.PackageTempC() - ss)
		for i := 0; i < 50; i++ {
			p.Step(5 * time.Second)
			gap := math.Abs(p.PackageTempC() - ss)
			if gap > prevGap+1e-9 {
				return false
			}
			prevGap = gap
		}
		return prevGap < 1 // converged
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNeverExceedsMax(t *testing.T) {
	cfg := DefaultConfig()
	p := New(cfg, 4, simrand.New(3))
	for i := 0; i < 4; i++ {
		p.SetLoad(i, 1, 3) // absurd intensity
	}
	for i := 0; i < 2000; i++ {
		p.Step(time.Second)
		if p.PackageTempC() > cfg.MaxTempC+1e-9 {
			t.Fatalf("package temp %v exceeded max %v", p.PackageTempC(), cfg.MaxTempC)
		}
	}
	for c := 0; c < 4; c++ {
		if p.CoreTempC(c) > cfg.MaxTempC+1e-9 {
			t.Errorf("core %d temp %v exceeds max", c, p.CoreTempC(c))
		}
	}
}

func TestPreheat(t *testing.T) {
	p := newPkg(t, 8)
	dur := p.PreheatTo(70, time.Hour)
	if p.PackageTempC() < 70 {
		t.Errorf("preheat reached only %v", p.PackageTempC())
	}
	if dur <= 0 || dur > time.Hour {
		t.Errorf("preheat duration = %v", dur)
	}
	// Loads restored (idle), so it should cool back down.
	for i := 0; i < 600; i++ {
		p.Step(time.Second)
	}
	if p.PackageTempC() > 50 {
		t.Errorf("after preheat+idle, temp = %v, want back near idle", p.PackageTempC())
	}
}

func TestPreheatTimeout(t *testing.T) {
	p := newPkg(t, 8)
	dur := p.PreheatTo(1000, 30*time.Second) // unreachable target
	if dur != 30*time.Second {
		t.Errorf("preheat timeout = %v, want 30s", dur)
	}
}

func TestSetLoadValidation(t *testing.T) {
	p := newPkg(t, 4)
	defer func() {
		if recover() == nil {
			t.Error("SetLoad out of range should panic")
		}
	}()
	p.SetLoad(4, 1, 1)
}

func TestCoreTempValidation(t *testing.T) {
	p := newPkg(t, 4)
	defer func() {
		if recover() == nil {
			t.Error("CoreTempC out of range should panic")
		}
	}()
	p.CoreTempC(-1)
}

func TestNewValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with 0 cores should panic")
		}
	}()
	New(DefaultConfig(), 0, simrand.New(1))
}

func TestIdleTempCRestoresLoads(t *testing.T) {
	p := newPkg(t, 4)
	p.SetLoad(2, 0.8, 1.1)
	before := p.PowerW()
	idle := p.IdleTempC()
	if idle < 40 || idle > 50 {
		t.Errorf("IdleTempC = %v", idle)
	}
	if p.PowerW() != before {
		t.Error("IdleTempC did not restore loads")
	}
}

func TestStepZeroDuration(t *testing.T) {
	p := newPkg(t, 4)
	before := p.PackageTempC()
	p.Step(0)
	p.Step(-time.Second)
	if p.PackageTempC() != before {
		t.Error("zero/negative Step changed temperature")
	}
}

func TestFrameworkScalePanics(t *testing.T) {
	p := newPkg(t, 4)
	defer func() {
		if recover() == nil {
			t.Error("SetFrameworkScale(0) should panic")
		}
	}()
	p.SetFrameworkScale(0)
}

func TestLoadClamping(t *testing.T) {
	p := newPkg(t, 4)
	p.SetLoad(0, 2.5, 1) // util clamped to 1
	p.SetLoad(1, -1, 1)  // clamped to 0
	pw := p.PowerW()
	q := newPkg(t, 4)
	q.SetLoad(0, 1, 1)
	if math.Abs(pw-q.PowerW()) > 1e-9 {
		t.Errorf("clamped power %v != expected %v", pw, q.PowerW())
	}
}
