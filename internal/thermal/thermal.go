// Package thermal models processor package temperature with a lumped
// RC (resistance-capacitance) network and a shared cooling device.
//
// The model reproduces the thermal phenomena of Observation 10:
//
//   - cores share a cooling device, so a busy neighbour raises a defective
//     core's temperature even though the defective component is private;
//   - heat persists after a load is removed (the "remaining heat" anomaly,
//     where testcase Y only fails when run right after the hot testcase X);
//   - a more efficient framework draws less power and thus runs cooler
//     (the "toolchain update" anomaly).
//
// Temperature follows dT/dt = (P·R(T) − (T − T_amb)) / τ with a cooling
// resistance that drops as the package heats (fans spin up):
// R_eff(ΔT) = R₀ / (1 + k·ΔT). Steady state solves the quadratic
// k·ΔT² + ΔT − R₀·P = 0. Busy cores additionally read a local hotspot
// offset above package temperature.
package thermal

import (
	"fmt"
	"math"
	"time"

	"farron/internal/simrand"
)

// Config holds the physical constants of a package's thermal network.
// DefaultConfig returns values calibrated so that an idle package sits near
// 45 ℃ (the paper's reported idle), a single fully-loaded core reads
// ≈55-60 ℃, and an all-core burn-in reaches ≈85-95 ℃.
type Config struct {
	// AmbientC is datacenter inlet temperature (℃). Alibaba Cloud keeps
	// environment variations minimal (Section 2.1), so this is constant.
	AmbientC float64
	// IdlePowerW is package power draw at idle.
	IdlePowerW float64
	// TDPW is the all-core full-load power budget; each core's peak draw
	// is TDPW / nCores.
	TDPW float64
	// R0 is the cooling thermal resistance at low temperature (℃/W).
	R0 float64
	// CoolingK is the fan-response coefficient: effective resistance is
	// R0 / (1 + CoolingK·ΔT).
	CoolingK float64
	// TimeConstant is the RC time constant of the package.
	TimeConstant time.Duration
	// LocalHotspotC is the extra temperature a fully-loaded core reads
	// above package temperature.
	LocalHotspotC float64
	// MaxTempC is the throttle ceiling; the package never exceeds it.
	MaxTempC float64
	// CoreOffsetSpreadC is the standard deviation of static per-core
	// sensor offsets (manufacturing variation).
	CoreOffsetSpreadC float64
}

// DefaultConfig returns the calibrated defaults described above.
func DefaultConfig() Config {
	return Config{
		AmbientC:          25,
		IdlePowerW:        20,
		TDPW:              120,
		R0:                2.2,
		CoolingK:          0.06,
		TimeConstant:      45 * time.Second,
		LocalHotspotC:     8,
		MaxTempC:          100,
		CoreOffsetSpreadC: 0.8,
	}
}

// Package is the thermal state of one processor package.
type Package struct {
	cfg    Config
	nCores int
	// tempC is the current package temperature.
	tempC float64
	// load[i] in [0,1] is core i's utilization; intensity[i] scales its
	// power draw (a heavy AVX testcase burns more than a pointer chase).
	load      []float64
	intensity []float64
	// offset[i] is core i's static sensor offset.
	offset []float64
	// coolingBoost > 0 strengthens cooling (cooling-device control);
	// frameworkScale scales all dynamic power (toolchain efficiency).
	coolingBoost   float64
	frameworkScale float64
}

// New creates a package with nCores cores at thermal equilibrium (idle
// steady state). The rng seeds static per-core offsets.
func New(cfg Config, nCores int, rng *simrand.Source) *Package {
	if nCores <= 0 {
		panic("thermal: package needs at least one core")
	}
	p := &Package{
		cfg:            cfg,
		nCores:         nCores,
		load:           make([]float64, nCores),
		intensity:      make([]float64, nCores),
		offset:         make([]float64, nCores),
		frameworkScale: 1,
	}
	for i := range p.offset {
		p.offset[i] = rng.Norm(0, cfg.CoreOffsetSpreadC)
	}
	p.tempC = p.SteadyStateC()
	return p
}

// NCores returns the number of cores.
func (p *Package) NCores() int { return p.nCores }

// SetLoad sets core's utilization (0..1) and workload power intensity
// (1 = nominal; heavy vector code > 1). Out-of-range cores panic.
func (p *Package) SetLoad(core int, util, intensity float64) {
	if core < 0 || core >= p.nCores {
		panic(fmt.Sprintf("thermal: core %d out of range [0,%d)", core, p.nCores))
	}
	p.load[core] = clamp(util, 0, 1)
	p.intensity[core] = math.Max(intensity, 0)
}

// ClearLoads idles every core.
func (p *Package) ClearLoads() {
	for i := range p.load {
		p.load[i] = 0
		p.intensity[i] = 0
	}
}

// SetCoolingBoost adds extra cooling capacity b >= 0 (0 = nominal). This
// models cooling-device control (ACPI [7] in the paper); Farron primarily
// uses workload backoff instead, as cooling control "is not widely
// applicable in Alibaba Cloud yet".
func (p *Package) SetCoolingBoost(b float64) { p.coolingBoost = math.Max(b, 0) }

// SetFrameworkScale scales dynamic power by s (the toolchain-update anomaly:
// a more efficient framework produced less heat). s must be positive.
func (p *Package) SetFrameworkScale(s float64) {
	if s <= 0 {
		panic("thermal: framework scale must be positive")
	}
	p.frameworkScale = s
}

// MeanUtil returns the mean core utilization across the package — the
// "CPU utilization" of the Section 5 stress-separation experiment.
func (p *Package) MeanUtil() float64 {
	sum := 0.0
	for _, u := range p.load {
		sum += u
	}
	return sum / float64(p.nCores)
}

// PowerW returns the current total package power draw.
func (p *Package) PowerW() float64 {
	perCore := p.cfg.TDPW / float64(p.nCores)
	dynamic := 0.0
	for i := range p.load {
		dynamic += p.load[i] * p.intensity[i] * perCore
	}
	return p.cfg.IdlePowerW + dynamic*p.frameworkScale
}

// SteadyStateC returns the package temperature the current load converges
// to: the positive root of CoolingK·ΔT² + ΔT − R₀·P/(1+boost) = 0.
func (p *Package) SteadyStateC() float64 {
	rp := p.cfg.R0 * p.PowerW() / (1 + p.coolingBoost)
	k := p.cfg.CoolingK
	var dt float64
	if k <= 0 {
		dt = rp
	} else {
		dt = (-1 + math.Sqrt(1+4*k*rp)) / (2 * k)
	}
	t := p.cfg.AmbientC + dt
	return math.Min(t, p.cfg.MaxTempC)
}

// Step advances the thermal state by dt using the exact exponential
// relaxation toward the current steady state.
func (p *Package) Step(dt time.Duration) {
	if dt <= 0 {
		return
	}
	ss := p.SteadyStateC()
	tau := p.cfg.TimeConstant.Seconds()
	a := math.Exp(-dt.Seconds() / tau)
	p.tempC = ss + (p.tempC-ss)*a
	if p.tempC > p.cfg.MaxTempC {
		p.tempC = p.cfg.MaxTempC
	}
}

// PackageTempC returns the current package temperature.
func (p *Package) PackageTempC() float64 { return p.tempC }

// CoreTempC returns the temperature core reads: package temperature plus
// its static offset plus the local hotspot contribution of its own load.
func (p *Package) CoreTempC(core int) float64 {
	if core < 0 || core >= p.nCores {
		panic(fmt.Sprintf("thermal: core %d out of range [0,%d)", core, p.nCores))
	}
	t := p.tempC + p.offset[core] + p.cfg.LocalHotspotC*p.load[core]*math.Min(p.intensity[core], 1.5)
	return math.Min(t, p.cfg.MaxTempC)
}

// ForceTemp sets the package temperature directly (test hook / preheat).
func (p *Package) ForceTemp(t float64) { p.tempC = clamp(t, p.cfg.AmbientC, p.cfg.MaxTempC) }

// PreheatTo runs a full-package synthetic stress load (the Linux "stress"
// tool of Section 5) in simulated steps until the package reaches target or
// maxDur elapses. It returns the simulated time spent. Loads are restored
// afterwards.
func (p *Package) PreheatTo(target float64, maxDur time.Duration) time.Duration {
	savedLoad := append([]float64(nil), p.load...)
	savedIntensity := append([]float64(nil), p.intensity...)
	for i := 0; i < p.nCores; i++ {
		p.SetLoad(i, 1, 1.3)
	}
	const step = time.Second
	var elapsed time.Duration
	for p.tempC < target && elapsed < maxDur {
		p.Step(step)
		elapsed += step
	}
	copy(p.load, savedLoad)
	copy(p.intensity, savedIntensity)
	return elapsed
}

// IdleTempC returns the steady-state temperature with all cores idle.
func (p *Package) IdleTempC() float64 {
	saved := p.PowerW()
	_ = saved
	savedLoad := append([]float64(nil), p.load...)
	savedIntensity := append([]float64(nil), p.intensity...)
	p.ClearLoads()
	t := p.SteadyStateC()
	copy(p.load, savedLoad)
	copy(p.intensity, savedIntensity)
	return t
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
