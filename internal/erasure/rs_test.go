package erasure

import (
	"bytes"
	"testing"
	"testing/quick"

	"farron/internal/simrand"
)

func TestGFFieldAxioms(t *testing.T) {
	// Multiplicative inverse property over the whole field.
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a*inv(a) = %d for a=%d", got, a)
		}
	}
	// Distributivity on random triples.
	f := func(a, b, c byte) bool {
		return gfMul(a, b^c) == gfMul(a, b)^gfMul(a, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Commutativity and associativity.
	g := func(a, b, c byte) bool {
		return gfMul(a, b) == gfMul(b, a) &&
			gfMul(gfMul(a, b), c) == gfMul(a, gfMul(b, c))
	}
	if err := quick.Check(g, nil); err != nil {
		t.Error(err)
	}
}

func TestGFDivPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("division by zero did not panic")
		}
	}()
	gfDiv(5, 0)
}

func TestMatrixInvertRoundTrip(t *testing.T) {
	rng := simrand.New(1)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		m := newMatrix(n, n)
		for i := range m {
			for j := range m[i] {
				m[i][j] = byte(rng.Uint64())
			}
		}
		inv, ok := m.invert()
		if !ok {
			continue // singular random matrix: skip
		}
		prod := m.mul(inv)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				want := byte(0)
				if i == j {
					want = 1
				}
				if prod[i][j] != want {
					t.Fatalf("m·inv(m)[%d][%d] = %d", i, j, prod[i][j])
				}
			}
		}
	}
}

func TestMatrixSingular(t *testing.T) {
	m := newMatrix(2, 2) // zero matrix
	if _, ok := m.invert(); ok {
		t.Error("zero matrix inverted")
	}
}

func makeShards(rng *simrand.Source, k, size int) [][]byte {
	data := make([][]byte, k)
	for i := range data {
		data[i] = make([]byte, size)
		for b := range data[i] {
			data[i][b] = byte(rng.Uint64())
		}
	}
	return data
}

func TestEncodeSystematic(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(2)
	data := makeShards(rng, 4, 64)
	shards, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if !bytes.Equal(shards[i], data[i]) {
			t.Errorf("shard %d not systematic", i)
		}
	}
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Errorf("fresh shards fail Verify: %v %v", ok, err)
	}
}

func TestReconstructAllErasurePatterns(t *testing.T) {
	// Property: for a (4,2) code, losing any ≤2 shards reconstructs
	// exactly.
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(3)
	data := makeShards(rng, 4, 32)
	shards, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 6; a++ {
		for b := a; b < 6; b++ {
			cp := make([][]byte, 6)
			copy(cp, shards)
			cp[a] = nil
			cp[b] = nil
			got, err := c.Reconstruct(cp)
			if err != nil {
				t.Fatalf("lose %d,%d: %v", a, b, err)
			}
			for i := range data {
				if !bytes.Equal(got[i], data[i]) {
					t.Fatalf("lose %d,%d: shard %d wrong", a, b, i)
				}
			}
		}
	}
}

func TestReconstructTooFewShards(t *testing.T) {
	c, _ := New(4, 2)
	rng := simrand.New(4)
	shards, _ := c.Encode(makeShards(rng, 4, 16))
	shards[0], shards[1], shards[2] = nil, nil, nil
	if _, err := c.Reconstruct(shards); err != ErrTooFewShards {
		t.Errorf("err = %v, want ErrTooFewShards", err)
	}
}

func TestCorruptionPropagates(t *testing.T) {
	// Observation 12: EC recovers erasures, but a silently corrupted
	// surviving shard poisons the reconstructed data.
	c, _ := New(6, 3)
	rng := simrand.New(5)
	data := makeShards(rng, 6, 64)
	shards, _ := c.Encode(data)

	// Lose one data shard; flip one bit in a parity shard that will be
	// used for reconstruction.
	shards[2] = nil
	shards[6][10] ^= 0x40

	got, err := c.Reconstruct(shards)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got[2], data[2]) {
		t.Fatal("reconstruction ignored the corrupted shard? propagation expected")
	}
	// The corruption landed in the recovered shard silently: EC gave no
	// error at all.
}

func TestVerifyCatchesPostEncodingCorruption(t *testing.T) {
	c, _ := New(4, 2)
	rng := simrand.New(6)
	shards, _ := c.Encode(makeShards(rng, 4, 32))
	shards[1][3] ^= 1
	ok, err := c.Verify(shards)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("Verify missed a corrupted shard")
	}
}

func TestVerifyBlindToPreEncodingCorruption(t *testing.T) {
	// Observation 12: corruption before parity generation yields
	// perfectly consistent — and wrong — shards.
	c, _ := New(4, 2)
	rng := simrand.New(7)
	data := makeShards(rng, 4, 32)
	data[0][0] ^= 0x08 // the CPU computed this byte wrong
	shards, _ := c.Encode(data)
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Errorf("Verify flagged pre-encoding corruption: parity was computed over corrupt data, it must look consistent (ok=%v err=%v)", ok, err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 2); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := New(2, 0); err == nil {
		t.Error("m=0 accepted")
	}
	if _, err := New(200, 100); err == nil {
		t.Error("k+m>255 accepted")
	}
}

func TestEncodeValidation(t *testing.T) {
	c, _ := New(3, 2)
	if _, err := c.Encode([][]byte{{1}, {2}}); err == nil {
		t.Error("wrong shard count accepted")
	}
	if _, err := c.Encode([][]byte{{1}, {2}, {3, 4}}); err == nil {
		t.Error("unequal sizes accepted")
	}
}

func TestBigShapeReconstruct(t *testing.T) {
	// A production-like (10,4) layout.
	c, err := New(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(8)
	data := makeShards(rng, 10, 128)
	shards, _ := c.Encode(data)
	for _, kill := range []int{0, 3, 11, 13} {
		shards[kill] = nil
	}
	got, err := c.Reconstruct(shards)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if !bytes.Equal(got[i], data[i]) {
			t.Fatalf("shard %d mismatch", i)
		}
	}
}
