package erasure

import (
	"errors"
	"fmt"
)

// Code is a systematic Reed-Solomon code with K data shards and M parity
// shards: any K of the K+M shards reconstruct the original data.
type Code struct {
	K, M int
	// encodeMatrix is (K+M)×K with an identity top (systematic).
	encodeMatrix matrix
}

// ErrTooFewShards is returned when fewer than K shards survive.
var ErrTooFewShards = errors.New("erasure: not enough shards to reconstruct")

// New builds a code with k data and m parity shards (k+m <= 255).
func New(k, m int) (*Code, error) {
	if k <= 0 || m <= 0 || k+m > 255 {
		return nil, fmt.Errorf("erasure: invalid shape k=%d m=%d", k, m)
	}
	// Build an (k+m)×k Vandermonde matrix, then normalize its top k×k
	// block to the identity so the code is systematic; any k rows of a
	// Vandermonde matrix are independent, a property normalization
	// preserves.
	vm := newMatrix(k+m, k)
	for r := 0; r < k+m; r++ {
		for c := 0; c < k; c++ {
			vm[r][c] = gfPow(byte(r+1), c)
		}
	}
	top := newMatrix(k, k)
	for i := 0; i < k; i++ {
		copy(top[i], vm[i])
	}
	topInv, ok := top.invert()
	if !ok {
		return nil, errors.New("erasure: vandermonde top block singular")
	}
	return &Code{K: k, M: m, encodeMatrix: vm.mul(topInv)}, nil
}

// Encode produces K+M shards from K equal-length data shards (the first K
// output shards are the data shards themselves).
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	if len(data) != c.K {
		return nil, fmt.Errorf("erasure: got %d data shards, want %d", len(data), c.K)
	}
	size := len(data[0])
	for _, d := range data {
		if len(d) != size {
			return nil, errors.New("erasure: unequal shard sizes")
		}
	}
	shards := make([][]byte, c.K+c.M)
	for i := 0; i < c.K; i++ {
		shards[i] = append([]byte(nil), data[i]...)
	}
	for p := 0; p < c.M; p++ {
		row := c.encodeMatrix[c.K+p]
		out := make([]byte, size)
		for col := 0; col < c.K; col++ {
			coef := row[col]
			if coef == 0 {
				continue
			}
			src := data[col]
			for b := 0; b < size; b++ {
				out[b] ^= gfMul(coef, src[b])
			}
		}
		shards[c.K+p] = out
	}
	return shards, nil
}

// Reconstruct recovers the original K data shards from any K surviving
// shards. shards has length K+M with nil entries for lost shards.
//
// Reconstruction is oblivious to silent corruption: a wrong byte in any
// surviving shard propagates into the recovered data (Observation 12).
func (c *Code) Reconstruct(shards [][]byte) ([][]byte, error) {
	if len(shards) != c.K+c.M {
		return nil, fmt.Errorf("erasure: got %d shards, want %d", len(shards), c.K+c.M)
	}
	var rows []int
	size := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if size < 0 {
			size = len(s)
		} else if len(s) != size {
			return nil, errors.New("erasure: unequal shard sizes")
		}
		rows = append(rows, i)
	}
	if len(rows) < c.K {
		return nil, ErrTooFewShards
	}
	rows = rows[:c.K]

	// Decode matrix: the surviving rows of the encode matrix, inverted.
	sub := newMatrix(c.K, c.K)
	for i, r := range rows {
		copy(sub[i], c.encodeMatrix[r])
	}
	dec, ok := sub.invert()
	if !ok {
		return nil, errors.New("erasure: surviving shard set not invertible")
	}

	data := make([][]byte, c.K)
	for d := 0; d < c.K; d++ {
		out := make([]byte, size)
		for i, r := range rows {
			coef := dec[d][i]
			if coef == 0 {
				continue
			}
			src := shards[r]
			for b := 0; b < size; b++ {
				out[b] ^= gfMul(coef, src[b])
			}
		}
		data[d] = out
	}
	return data, nil
}

// Verify recomputes parity from the data shards and reports whether every
// shard is consistent. This is the best EC itself can do — and it cannot
// say *which* shard is corrupt, nor detect corruption that happened before
// encoding.
func (c *Code) Verify(shards [][]byte) (bool, error) {
	if len(shards) != c.K+c.M {
		return false, fmt.Errorf("erasure: got %d shards, want %d", len(shards), c.K+c.M)
	}
	for _, s := range shards {
		if s == nil {
			return false, errors.New("erasure: Verify requires all shards")
		}
	}
	re, err := c.Encode(shards[:c.K])
	if err != nil {
		return false, err
	}
	for i := c.K; i < c.K+c.M; i++ {
		for b := range re[i] {
			if re[i][b] != shards[i][b] {
				return false, nil
			}
		}
	}
	return true, nil
}
