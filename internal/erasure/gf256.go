// Package erasure implements systematic Reed-Solomon erasure coding over
// GF(256) — the storage-durability substrate of Section 6.2's analysis.
//
// Erasure coding recovers *lost* shards but cannot detect *corrupted*
// ones: reconstruction from a silently corrupted shard propagates the
// corruption into the recovered data (Observation 12: "a corrupted data
// block may be used to construct a lost data block, causing the corruption
// to propagate"). The tests and the mitigation-comparison experiment
// demonstrate exactly that failure mode.
package erasure

// gfPoly is the AES field polynomial x^8+x^4+x^3+x^2+1 (0x11D with the
// implicit x^8).
const gfPoly = 0x11D

var (
	gfExp [512]byte // exp table doubled to avoid mod in mul
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= gfPoly
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies in GF(256).
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfDiv divides in GF(256); division by zero panics.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("erasure: division by zero in GF(256)")
	}
	if a == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+255-int(gfLog[b])]
}

// gfInv returns the multiplicative inverse.
func gfInv(a byte) byte { return gfDiv(1, a) }

// gfPow returns a^n.
func gfPow(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	return gfExp[(int(gfLog[a])*n)%255]
}

// matrix is a dense GF(256) matrix.
type matrix [][]byte

func newMatrix(rows, cols int) matrix {
	m := make(matrix, rows)
	for i := range m {
		m[i] = make([]byte, cols)
	}
	return m
}

// identity returns the n×n identity matrix.
func identityMatrix(n int) matrix {
	m := newMatrix(n, n)
	for i := 0; i < n; i++ {
		m[i][i] = 1
	}
	return m
}

// mul returns m·other.
func (m matrix) mul(other matrix) matrix {
	rows, inner, cols := len(m), len(other), len(other[0])
	out := newMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			var acc byte
			for k := 0; k < inner; k++ {
				acc ^= gfMul(m[r][k], other[k][c])
			}
			out[r][c] = acc
		}
	}
	_ = inner
	return out
}

// invert returns the inverse via Gauss-Jordan elimination; singular
// matrices return ok=false.
func (m matrix) invert() (matrix, bool) {
	n := len(m)
	aug := newMatrix(n, 2*n)
	for i := 0; i < n; i++ {
		copy(aug[i], m[i])
		aug[i][n+i] = 1
	}
	for col := 0; col < n; col++ {
		// Find pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if aug[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, false
		}
		aug[col], aug[pivot] = aug[pivot], aug[col]
		// Scale pivot row.
		inv := gfInv(aug[col][col])
		for c := 0; c < 2*n; c++ {
			aug[col][c] = gfMul(aug[col][c], inv)
		}
		// Eliminate other rows.
		for r := 0; r < n; r++ {
			if r == col || aug[r][col] == 0 {
				continue
			}
			f := aug[r][col]
			for c := 0; c < 2*n; c++ {
				aug[r][c] ^= gfMul(f, aug[col][c])
			}
		}
	}
	out := newMatrix(n, n)
	for i := 0; i < n; i++ {
		copy(out[i], aug[i][n:])
	}
	return out, true
}
